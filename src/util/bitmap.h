#ifndef SAGE_UTIL_BITMAP_H_
#define SAGE_UTIL_BITMAP_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage::util {

/// Calls fn(bit_index) for every set bit of one 64-bit word in ascending
/// order (countr_zero extraction, lowest-bit clearing). The shared
/// popcount-iteration idiom: Bitmap::ForEachSet uses it per word, and the
/// MS-BFS batching code uses it on its per-node 64-instance masks.
template <typename Fn>
inline void ForEachSetBit(uint64_t word, Fn&& fn) {
  while (word != 0) {
    fn(static_cast<uint32_t>(std::countr_zero(word)));
    word &= word - 1;  // clear lowest set bit
  }
}

/// Packed 64-bit bitmap for frontier membership sets (SIMD-X-style word
/// parallelism on the host): one bit per node, word-wide and/or/andnot,
/// popcount counting, and countr_zero iteration over set bits. All word
/// operations maintain the invariant that bits at positions >= size() in
/// the final word are zero, so CountSet/ForEachSet never see phantom
/// members after SetAll or a word-wide combine.
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(size_t num_bits) { Resize(num_bits); }

  /// Resizes to num_bits, clearing every bit (frontier bitmaps are always
  /// rebuilt after a resize, so preserving contents would be dead weight).
  void Resize(size_t num_bits) {
    num_bits_ = num_bits;
    words_.assign(NumWords(num_bits), 0);
  }

  size_t size() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }
  bool empty() const { return num_bits_ == 0; }

  void Set(size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void Clear(size_t i) {
    assert(i < num_bits_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool Test(size_t i) const {
    assert(i < num_bits_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  /// Sets bit i and reports whether it was already set (single-threaded
  /// visited-set idiom; not atomic).
  bool TestAndSet(size_t i) {
    assert(i < num_bits_);
    uint64_t& w = words_[i >> 6];
    uint64_t bit = uint64_t{1} << (i & 63);
    bool was = (w & bit) != 0;
    w |= bit;
    return was;
  }

  void ClearAll() {
    for (uint64_t& w : words_) w = 0;
  }
  void SetAll() {
    for (uint64_t& w : words_) w = ~uint64_t{0};
    MaskTail();
  }

  /// Word-parallel this &= other / this |= other / this &= ~other. The
  /// operands must be the same size.
  void AndWith(const Bitmap& other) {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  }
  void OrWith(const Bitmap& other) {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }
  void AndNotWith(const Bitmap& other) {
    assert(num_bits_ == other.num_bits_);
    for (size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  }

  /// Number of set bits (word-wide popcount, autovectorizable).
  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }
  bool AnySet() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Calls fn(i) for every set bit i in ascending order (countr_zero
  /// extraction — cost is proportional to set bits plus words scanned).
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      ForEachSetBit(words_[wi],
                    [&](uint32_t bit) { fn((wi << 6) + bit); });
    }
  }

  const uint64_t* words() const { return words_.data(); }
  uint64_t* words() { return words_.data(); }

  static size_t NumWords(size_t num_bits) { return (num_bits + 63) >> 6; }

 private:
  /// Zeroes the bits past num_bits_ in the final word.
  void MaskTail() {
    size_t tail = num_bits_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (uint64_t{1} << tail) - 1;
    }
  }

  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_BITMAP_H_
