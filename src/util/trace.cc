#include "util/trace.h"

#include "util/strings.h"

namespace sage::util {

TraceEvent& TraceEvent::ArgStr(const std::string& key,
                               const std::string& value) {
  args.emplace_back(key, "\"" + JsonEscape(value) + "\"");
  return *this;
}

TraceEvent& TraceEvent::ArgU64(const std::string& key, uint64_t value) {
  std::string v;
  AppendF(&v, "%llu", static_cast<unsigned long long>(value));
  args.emplace_back(key, std::move(v));
  return *this;
}

TraceEvent& TraceEvent::ArgF(const std::string& key, double value) {
  std::string v;
  AppendF(&v, "%.17g", value);
  args.emplace_back(key, std::move(v));
  return *this;
}

TraceLog::TraceLog() : t0_(std::chrono::steady_clock::now()) {}

void TraceLog::Add(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

double TraceLog::NowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

namespace {
void AppendEventJson(std::string* out, const TraceEvent& e) {
  AppendF(out, "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%c\", \"ts\": %.3f",
          JsonEscape(e.name).c_str(), JsonEscape(e.cat).c_str(), e.ph, e.ts_us);
  if (e.ph == 'X') AppendF(out, ", \"dur\": %.3f", e.dur_us);
  if (e.ph == 'b' || e.ph == 'e') {
    AppendF(out, ", \"id\": \"0x%llx\"", static_cast<unsigned long long>(e.id));
  }
  AppendF(out, ", \"pid\": %u, \"tid\": %u", e.pid, e.tid);
  if (!e.args.empty()) {
    *out += ", \"args\": {";
    for (size_t i = 0; i < e.args.size(); ++i) {
      AppendF(out, "%s\"%s\": %s", i == 0 ? "" : ", ",
              JsonEscape(e.args[i].first).c_str(), e.args[i].second.c_str());
    }
    *out += "}";
  }
  *out += "}";
}
}  // namespace

std::string TraceLog::ToJson() const {
  std::vector<TraceEvent> events = snapshot();
  std::string out = "{\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  for (size_t i = 0; i < events.size(); ++i) {
    AppendEventJson(&out, events[i]);
    out += i + 1 == events.size() ? "\n" : ",\n";
  }
  out += "]}\n";
  return out;
}

TraceEvent ProcessNameEvent(uint32_t pid, const std::string& name) {
  TraceEvent e;
  e.name = "process_name";
  e.ph = 'M';
  e.pid = pid;
  return e.ArgStr("name", name);
}

}  // namespace sage::util
