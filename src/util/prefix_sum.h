#ifndef SAGE_UTIL_PREFIX_SUM_H_
#define SAGE_UTIL_PREFIX_SUM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sage::util {

/// Exclusive prefix sum: out[i] = sum of in[0..i), out has size
/// in.size() + 1 with out.back() == total. This mirrors the scan primitive
/// graph engines use for frontier contraction and CSR offset construction.
std::vector<uint64_t> ExclusivePrefixSum(const std::vector<uint32_t>& in);

/// In-place exclusive prefix sum over a vector of 64-bit counts; returns the
/// total. After the call v[i] holds the sum of the original v[0..i).
uint64_t ExclusivePrefixSumInPlace(std::vector<uint64_t>& v);

/// Inclusive prefix sum (out[i] = sum of in[0..i]).
std::vector<uint64_t> InclusivePrefixSum(const std::vector<uint32_t>& in);

}  // namespace sage::util

#endif  // SAGE_UTIL_PREFIX_SUM_H_
