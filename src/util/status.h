#ifndef SAGE_UTIL_STATUS_H_
#define SAGE_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace sage::util {

/// Error codes used across the SAGE library. Modeled after the RocksDB /
/// Abseil canonical codes; the library never throws — every fallible
/// operation returns a Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIoError,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  /// A deadline attached to the operation expired before it completed
  /// (serve request deadlines, engine modeled-time budgets).
  kDeadlineExceeded,
  /// The operation was cancelled cooperatively (CancellationToken).
  kAborted,
  /// A transient, retryable failure: the operation may succeed if retried
  /// (injected transient kernel faults, briefly saturated resources).
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy in the error-free
/// case (a code plus an empty string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr aborts the process (library code must check ok() first).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return value;` / `return Status::NotFound(...);`).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return value_;
  }
  T& value() & {
    AbortIfError();
    return value_;
  }
  T&& value() && {
    AbortIfError();
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  T value_{};
};

namespace internal {
[[noreturn]] void DieStatusOrValueOnError(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieStatusOrValueOnError(status_);
}

/// Propagates an error status out of the current function.
#define SAGE_RETURN_IF_ERROR(expr)                        \
  do {                                                    \
    ::sage::util::Status _sage_status = (expr);           \
    if (!_sage_status.ok()) return _sage_status;          \
  } while (0)

/// Assigns the value of a StatusOr expression or propagates its error.
#define SAGE_ASSIGN_OR_RETURN(lhs, expr)                  \
  SAGE_ASSIGN_OR_RETURN_IMPL_(                            \
      SAGE_STATUS_CONCAT_(_sage_statusor, __LINE__), lhs, expr)
#define SAGE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)       \
  auto tmp = (expr);                                      \
  if (!tmp.ok()) return tmp.status();                     \
  lhs = std::move(tmp).value()
#define SAGE_STATUS_CONCAT_(a, b) SAGE_STATUS_CONCAT_IMPL_(a, b)
#define SAGE_STATUS_CONCAT_IMPL_(a, b) a##b

}  // namespace sage::util

#endif  // SAGE_UTIL_STATUS_H_
