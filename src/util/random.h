#ifndef SAGE_UTIL_RANDOM_H_
#define SAGE_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sage::util {

/// Deterministic, fast PRNG (xoshiro256**, seeded via SplitMix64). Every
/// randomized component in SAGE takes an explicit seed so simulations and
/// benchmarks are exactly reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5a5e5eed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t UniformU64(uint64_t bound);
  uint32_t UniformU32(uint32_t bound);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Standard-normal draw (Box-Muller).
  double Normal();

  /// Zipf-like draw in [0, n): probability of i proportional to
  /// 1/(i+1)^alpha. Uses rejection-inversion; deterministic per seed.
  uint64_t Zipf(uint64_t n, double alpha);

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Complete generator state, snapshotable mid-stream so a consumer can be
  /// suspended and resumed bit-identically (e.g. ArrivalProcess::Save).
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_normal = false;
    double cached_normal = 0.0;
  };
  State state() const {
    State st;
    for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
    st.has_cached_normal = has_cached_normal_;
    st.cached_normal = cached_normal_;
    return st;
  }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    has_cached_normal_ = st.has_cached_normal;
    cached_normal_ = st.cached_normal;
  }

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// SplitMix64 single-step hash; useful for stateless per-index randomness.
uint64_t SplitMix64(uint64_t x);

}  // namespace sage::util

#endif  // SAGE_UTIL_RANDOM_H_
