#ifndef SAGE_UTIL_TOKEN_BUCKET_H_
#define SAGE_UTIL_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

namespace sage::util {

/// Deterministic token bucket: refill is driven by an external monotone
/// logical clock ("ticks") instead of wall time, so rate decisions made
/// with it are replayable — the same admission sequence always produces
/// the same accept/deny pattern regardless of host speed or thread count.
/// The serving layer ticks it once per submission, which turns `rate` into
/// "share of total submissions this principal may consume" and `burst`
/// into the credit it may save up for spikes.
///
/// Not thread-safe; callers serialize access (the service holds its
/// admission mutex, the load simulator is single-threaded).
class TokenBucket {
 public:
  /// `rate` tokens accrue per tick, capped at `burst`. A bucket starts
  /// full — a fresh principal gets its burst immediately.
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Refills for the ticks elapsed since the last call, then tries to take
  /// `cost` tokens. `tick` must be monotone non-decreasing across calls.
  bool TryAcquire(uint64_t tick, double cost = 1.0) {
    if (tick > last_tick_) {
      tokens_ = std::min(
          burst_, tokens_ + rate_ * static_cast<double>(tick - last_tick_));
      last_tick_ = tick;
    }
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  uint64_t last_tick_ = 0;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_TOKEN_BUCKET_H_
