#include "util/arrival.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sage::util {

ArrivalProcess::ArrivalProcess(const ArrivalOptions& options, uint64_t seed)
    : options_(options), rng_(seed) {
  SAGE_CHECK(options_.rate > 0.0);
  const bool modulated =
      options_.burst_period_s > 0.0 && options_.burst_factor != 1.0;
  if (modulated) {
    SAGE_CHECK(options_.burst_duty > 0.0 && options_.burst_duty < 1.0);
    on_rate_ = options_.rate * options_.burst_factor;
    // Solve duty*on + (1-duty)*off = rate for the OFF rate; a burst factor
    // large enough to concentrate all mass in the ON phase clamps OFF to a
    // tiny trickle instead of going negative.
    off_rate_ = options_.rate *
                (1.0 - options_.burst_duty * options_.burst_factor) /
                (1.0 - options_.burst_duty);
    off_rate_ = std::max(off_rate_, options_.rate * 1e-6);
  } else {
    options_.burst_period_s = 0.0;
    on_rate_ = off_rate_ = options_.rate;
  }
}

double ArrivalProcess::Next() {
  // Exp(1) "work" is spent crossing piecewise-constant-rate segments:
  // a segment of length L at rate r absorbs L*r of it.
  double work = -std::log(1.0 - rng_.UniformDouble());
  if (options_.burst_period_s <= 0.0) {
    now_ += work / on_rate_;
    return now_;
  }
  const double period = options_.burst_period_s;
  for (;;) {
    const double on_end = cycle_start_ + options_.burst_duty * period;
    const double cycle_end = cycle_start_ + period;
    const bool in_on = now_ < on_end;
    const double rate = in_on ? on_rate_ : off_rate_;
    const double end = in_on ? on_end : cycle_end;
    const double capacity = (end - now_) * rate;
    if (work <= capacity) {
      now_ += work / rate;
      return now_;
    }
    work -= capacity;
    now_ = end;
    if (!in_on) {
      ++cycle_;
      cycle_start_ = end;  // the boundary now_ just stepped onto, exactly
    }
  }
}

}  // namespace sage::util
