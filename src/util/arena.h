#ifndef SAGE_UTIL_ARENA_H_
#define SAGE_UTIL_ARENA_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace sage::util {

/// Chunked bump allocator for per-phase scratch (the FGNN workspace-pool
/// shape): allocation is a pointer bump, Reset() recycles every chunk
/// without returning memory to the system, so steady-state phases allocate
/// nothing from the OS after warmup. Only trivially-destructible element
/// types are supported — nothing is ever destroyed, just rewound.
///
/// Instrumentation: chunk_allocations() counts chunks ever obtained from
/// the system (a warmed-up arena stops growing, which the util_test
/// asserts), and bytes_reused() counts bytes served from chunks that
/// predate the current Reset epoch (exported as util.arena.bytes_reused).
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}

  /// Scratch-copy semantics: copying an arena yields a fresh empty arena
  /// with the same chunk size. Contexts that embed an arena stay copyable
  /// (per-worker clones warm up their own chunks) and spans never alias
  /// across copies.
  Arena(const Arena& other) : chunk_bytes_(other.chunk_bytes_) {}
  Arena& operator=(const Arena& other) {
    chunk_bytes_ = other.chunk_bytes_;
    chunks_.clear();
    cur_chunk_ = 0;
    cur_offset_ = 0;
    epoch_ = 0;
    chunk_allocations_ = 0;
    bytes_reused_ = 0;
    return *this;
  }

  /// Allocates an uninitialized span of n T. The span is valid until the
  /// next Reset(). n == 0 returns an empty span.
  template <typename T>
  std::span<T> AllocateSpan(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    void* p = AllocateBytes(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// Allocates a zero-initialized span of n T.
  template <typename T>
  std::span<T> AllocateZeroedSpan(size_t n) {
    std::span<T> s = AllocateSpan<T>(n);
    for (T& v : s) v = T{};
    return s;
  }

  /// Rewinds every chunk for reuse. Previously returned spans become
  /// invalid; no memory is released.
  void Reset() {
    cur_chunk_ = 0;
    cur_offset_ = 0;
    ++epoch_;
  }

  /// Chunks ever requested from the system (monotone; flat after warmup).
  uint64_t chunk_allocations() const { return chunk_allocations_; }
  /// Cumulative bytes served from recycled chunks (chunks created before
  /// the latest Reset).
  uint64_t bytes_reused() const { return bytes_reused_; }
  /// Total bytes currently owned across all chunks.
  uint64_t bytes_capacity() const {
    uint64_t total = 0;
    for (const Chunk& c : chunks_) total += c.bytes;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t bytes = 0;
    uint64_t epoch = 0;  // epoch at creation
  };

  void* AllocateBytes(size_t bytes, size_t align) {
    assert(align != 0 && (align & (align - 1)) == 0);
    for (;;) {
      if (cur_chunk_ < chunks_.size()) {
        Chunk& c = chunks_[cur_chunk_];
        size_t aligned = (cur_offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= c.bytes) {
          cur_offset_ = aligned + bytes;
          if (c.epoch < epoch_) bytes_reused_ += bytes;
          return c.data.get() + aligned;
        }
        ++cur_chunk_;
        cur_offset_ = 0;
        continue;
      }
      // Need a fresh chunk. Oversized requests get a dedicated chunk so a
      // single large phase does not force the nominal chunk size up.
      size_t want = bytes + align > chunk_bytes_ ? bytes + align : chunk_bytes_;
      Chunk c;
      c.data = std::make_unique<std::byte[]>(want);
      c.bytes = want;
      c.epoch = epoch_;
      chunks_.push_back(std::move(c));
      ++chunk_allocations_;
    }
  }

  size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  size_t cur_chunk_ = 0;
  size_t cur_offset_ = 0;
  uint64_t epoch_ = 0;
  uint64_t chunk_allocations_ = 0;
  uint64_t bytes_reused_ = 0;
};

}  // namespace sage::util

#endif  // SAGE_UTIL_ARENA_H_
