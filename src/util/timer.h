#ifndef SAGE_UTIL_TIMER_H_
#define SAGE_UTIL_TIMER_H_

#include <chrono>

namespace sage::util {

/// Monotonic wall-clock stopwatch used to time host-side work (reordering
/// preprocessing, graph builds). GPU-side "time" comes from the simulator's
/// cost model, never from this timer.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Monotonic-clock "now" in seconds — the time base absolute wall
/// deadlines (core::RunGuard::deadline_wall_until_seconds,
/// serve::Request::deadline_wall_until_seconds) are expressed in.
inline double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace sage::util

#endif  // SAGE_UTIL_TIMER_H_
