#include "util/status.h"

#include <cstdio>
#include <cstdlib>

namespace sage::util {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

namespace internal {

void DieStatusOrValueOnError(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace sage::util
