#ifndef SAGE_UTIL_LOGGING_H_
#define SAGE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace sage::util {

/// Severity levels for the process-wide logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log message; emits on destruction. Fatal messages abort.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows streamed values when a log statement is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Turns a streamed expression into void so it can sit on one arm of a
/// ternary (the classic glog "voidify" trick); & binds looser than <<.
class LogMessageVoidify {
 public:
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace sage::util

#define SAGE_LOG(level)                                                   \
  ::sage::util::internal::LogMessage(::sage::util::LogLevel::k##level,    \
                                     __FILE__, __LINE__)                  \
      .stream()

/// CHECK-style invariant assertions: always on, abort with a message.
#define SAGE_CHECK(cond)                                       \
  (cond) ? (void)0                                             \
         : ::sage::util::internal::LogMessageVoidify() &       \
               ::sage::util::internal::LogMessage(             \
                   ::sage::util::LogLevel::kFatal, __FILE__,   \
                   __LINE__)                                   \
                   .stream()                                   \
               << "Check failed: " #cond " "

#define SAGE_CHECK_OP(a, b, op)                                \
  SAGE_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define SAGE_CHECK_EQ(a, b) SAGE_CHECK_OP(a, b, ==)
#define SAGE_CHECK_NE(a, b) SAGE_CHECK_OP(a, b, !=)
#define SAGE_CHECK_LT(a, b) SAGE_CHECK_OP(a, b, <)
#define SAGE_CHECK_LE(a, b) SAGE_CHECK_OP(a, b, <=)
#define SAGE_CHECK_GT(a, b) SAGE_CHECK_OP(a, b, >)
#define SAGE_CHECK_GE(a, b) SAGE_CHECK_OP(a, b, >=)

/// CHECKs that an expression returning Status is OK.
#define SAGE_CHECK_OK(expr)                                    \
  do {                                                         \
    const ::sage::util::Status _sage_check_status = (expr);    \
    SAGE_CHECK(_sage_check_status.ok())                        \
        << _sage_check_status.ToString();                      \
  } while (0)

#ifndef NDEBUG
#define SAGE_DCHECK(cond) SAGE_CHECK(cond)
#else
#define SAGE_DCHECK(cond) \
  while (false) ::sage::util::internal::NullStream() << !(cond)
#endif

#endif  // SAGE_UTIL_LOGGING_H_
