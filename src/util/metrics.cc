#include "util/metrics.h"

#include "util/strings.h"

namespace sage::util {

void HistogramMetric::Add(uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.Add(value);
}

void HistogramMetric::AddCount(uint64_t value, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  hist_.AddCount(value, n);
}

void HistogramMetric::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  hist_ = Histogram();
}

Histogram HistogramMetric::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hist_;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // std::map iteration is name-sorted, which is what makes export order
  // deterministic.
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram h = hist->snapshot();
    HistogramSnapshot hs;
    hs.name = name;
    hs.count = h.total_count();
    hs.p50 = h.Percentile(50.0);
    hs.p95 = h.Percentile(95.0);
    hs.p99 = h.Percentile(99.0);
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h.bucket_count(b) == 0) continue;
      hs.buckets.push_back({Histogram::BucketLowerBound(b),
                            Histogram::BucketUpperBound(b),
                            h.bucket_count(b)});
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    AppendF(&out, "%s\n    \"%s\": %llu", first ? "" : ",",
            JsonEscape(name).c_str(), static_cast<unsigned long long>(value));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    AppendF(&out, "%s\n    \"%s\": %.17g", first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& hs : histograms) {
    AppendF(&out,
            "%s\n    \"%s\": {\"count\": %llu, \"p50\": %.17g, "
            "\"p95\": %.17g, \"p99\": %.17g, \"buckets\": [",
            first ? "" : ",", JsonEscape(hs.name).c_str(),
            static_cast<unsigned long long>(hs.count), hs.p50, hs.p95, hs.p99);
    for (size_t i = 0; i < hs.buckets.size(); ++i) {
      AppendF(&out, "%s[%llu, %llu, %llu]", i == 0 ? "" : ", ",
              static_cast<unsigned long long>(hs.buckets[i].lo),
              static_cast<unsigned long long>(hs.buckets[i].hi),
              static_cast<unsigned long long>(hs.buckets[i].count));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace sage::util
