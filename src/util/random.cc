#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace sage::util {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    sm = SplitMix64(sm);
    s = sm;
  }
  // xoshiro256** requires a nonzero state; SplitMix64 of anything is
  // astronomically unlikely to produce all zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  SAGE_DCHECK(bound > 0);
  // Lemire's multiply-shift rejection method for unbiased bounded draws.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint32_t Rng::UniformU32(uint32_t bound) {
  return static_cast<uint32_t>(UniformU64(bound));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  // Avoid log(0).
  if (u1 <= 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::Zipf(uint64_t n, double alpha) {
  SAGE_DCHECK(n > 0);
  if (n == 1) return 0;
  // Inverse-CDF approximation over the continuous envelope
  // p(x) ~ x^-alpha on [1, n+1); good enough for workload generation and
  // O(1) per draw.
  double u = UniformDouble();
  double x;
  if (std::abs(alpha - 1.0) < 1e-9) {
    x = std::exp(u * std::log(static_cast<double>(n) + 1.0));
  } else {
    double one_minus = 1.0 - alpha;
    double hi = std::pow(static_cast<double>(n) + 1.0, one_minus);
    x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus);
  }
  uint64_t k = static_cast<uint64_t>(x) - 1;
  if (k >= n) k = n - 1;
  return k;
}

}  // namespace sage::util
