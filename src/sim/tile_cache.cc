#include "sim/tile_cache.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::sim {

void HostTileCache::Configure(const Config& config) {
  SAGE_CHECK(config.sectors_per_tile > 0);
  SAGE_CHECK(config.sector_bytes > 0);
  config_ = config;
  const uint64_t tile = tile_bytes();
  capacity_tiles_ = config_.capacity_bytes / tile;
  // Split the capacity between the sections. Degenerate capacities keep the
  // cache functional: one tile total means a plain LRU (no protected
  // section); a protected_fraction of 0 or 1 clamps to leave at least one
  // probationary slot so demand misses always have somewhere to land.
  double frac = std::clamp(config_.protected_fraction, 0.0, 1.0);
  protected_capacity_ =
      static_cast<uint64_t>(static_cast<double>(capacity_tiles_) * frac);
  if (protected_capacity_ >= capacity_tiles_ && capacity_tiles_ > 0) {
    protected_capacity_ = capacity_tiles_ - 1;
  }
  probationary_capacity_ = capacity_tiles_ - protected_capacity_;
  stats_ = Stats();
  map_.clear();
  nodes_.clear();
  free_nodes_.clear();
  protected_ = List();
  probationary_ = List();
}

uint32_t HostTileCache::AllocNode(uint64_t tile) {
  uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& n = nodes_[idx];
  n.tile = tile;
  n.prev = kNil;
  n.next = kNil;
  n.protected_section = false;
  return idx;
}

void HostTileCache::FreeNode(uint32_t idx) { free_nodes_.push_back(idx); }

void HostTileCache::PushFront(List* list, uint32_t idx) {
  Node& n = nodes_[idx];
  n.prev = kNil;
  n.next = list->head;
  if (list->head != kNil) nodes_[list->head].prev = idx;
  list->head = idx;
  if (list->tail == kNil) list->tail = idx;
  ++list->size;
}

void HostTileCache::Unlink(List* list, uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    list->head = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    list->tail = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
  --list->size;
}

void HostTileCache::Touch(uint32_t idx) {
  Node& n = nodes_[idx];
  if (n.protected_section) {
    // Already proven hot: refresh its protected MRU position.
    if (protected_.head != idx) {
      Unlink(&protected_, idx);
      PushFront(&protected_, idx);
    }
    return;
  }
  if (protected_capacity_ == 0) {
    // Plain-LRU degenerate mode: a hit refreshes probationary MRU.
    if (probationary_.head != idx) {
      Unlink(&probationary_, idx);
      PushFront(&probationary_, idx);
    }
    return;
  }
  // Reuse observed: promote probationary -> protected.
  Unlink(&probationary_, idx);
  n.protected_section = true;
  PushFront(&protected_, idx);
  ++stats_.promotions;
  if (protected_.size > protected_capacity_) {
    // Demote protected LRU back to probationary MRU — it gets one more
    // chance before eviction rather than being dropped outright.
    uint32_t victim = protected_.tail;
    Unlink(&protected_, victim);
    nodes_[victim].protected_section = false;
    PushFront(&probationary_, victim);
    if (probationary_.size > probationary_capacity_) {
      uint32_t evicted = probationary_.tail;
      Unlink(&probationary_, evicted);
      map_.erase(nodes_[evicted].tile);
      FreeNode(evicted);
      ++stats_.evictions;
    }
  }
}

void HostTileCache::AdmitProbationary(uint64_t tile) {
  uint32_t idx = AllocNode(tile);
  map_.emplace(tile, idx);
  PushFront(&probationary_, idx);
  if (probationary_.size > probationary_capacity_) {
    uint32_t evicted = probationary_.tail;
    Unlink(&probationary_, evicted);
    map_.erase(nodes_[evicted].tile);
    FreeNode(evicted);
    ++stats_.evictions;
  }
}

uint64_t HostTileCache::Access(std::span<const uint64_t> sectors,
                               std::vector<uint64_t>* fetch) {
  fetch->clear();
  if (!enabled()) {
    fetch->assign(sectors.begin(), sectors.end());
    stats_.misses += sectors.size();
    return 0;
  }
  const uint32_t spt = config_.sectors_per_tile;
  uint64_t hits = 0;
  size_t i = 0;
  while (i < sectors.size()) {
    const uint64_t tile = sectors[i] / spt;
    // The batch is sorted, so one tile's sectors are consecutive.
    size_t j = i + 1;
    while (j < sectors.size() && sectors[j] / spt == tile) ++j;
    const uint64_t batch_sectors = j - i;
    auto it = map_.find(tile);
    if (it != map_.end()) {
      hits += batch_sectors;
      Touch(it->second);
    } else {
      stats_.misses += batch_sectors;
      // Page the whole aligned tile over the link: consecutive missed
      // tiles produce consecutive sector ids, which the frame model merges
      // into maximal payloads.
      const uint64_t first = tile * spt;
      for (uint32_t s = 0; s < spt; ++s) fetch->push_back(first + s);
      AdmitProbationary(tile);
    }
    i = j;
  }
  stats_.hits += hits;
  return hits;
}

bool HostTileCache::PrefillFull() const {
  if (!enabled()) return true;
  return protected_capacity_ > 0
             ? protected_.size >= protected_capacity_
             : probationary_.size >= probationary_capacity_;
}

bool HostTileCache::Prefill(uint64_t tile) {
  if (!enabled() || PrefillFull()) return false;
  if (map_.count(tile) != 0) return false;
  uint32_t idx = AllocNode(tile);
  if (protected_capacity_ > 0) {
    // Pre-filled tiles start protected: the degree ranking is the
    // admission evidence a demand miss would have to earn by reuse.
    nodes_[idx].protected_section = true;
    PushFront(&protected_, idx);
  } else {
    PushFront(&probationary_, idx);
  }
  map_.emplace(tile, idx);
  stats_.prefill_bytes += tile_bytes();
  return true;
}

bool HostTileCache::Contains(uint64_t sector) const {
  if (!enabled()) return false;
  return map_.count(TileOf(sector)) != 0;
}

}  // namespace sage::sim
