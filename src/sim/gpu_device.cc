#include "sim/gpu_device.h"

#include <algorithm>

#include "sim/fault_injector.h"
#include "sim/replay.h"
#include "util/logging.h"

namespace sage::sim {

namespace {
/// The calling thread's bound trace recorder (parallel trace phase). A
/// plain pointer: binding is per ParallelFor body and the engine unbinds
/// before any serial device work.
thread_local KernelTraceRecorder* tls_recorder = nullptr;
}  // namespace

void GpuDevice::BindThreadRecorder(KernelTraceRecorder* rec) {
  tls_recorder = rec;
}

KernelTraceRecorder* GpuDevice::BoundRecorder() const {
  KernelTraceRecorder* rec = tls_recorder;
  return rec != nullptr && rec->device() == this ? rec : nullptr;
}

const char* AccessIntentName(AccessIntent intent) {
  switch (intent) {
    case AccessIntent::kRead:
      return "read";
    case AccessIntent::kWrite:
      return "write";
    case AccessIntent::kAtomic:
      return "atomic";
    case AccessIntent::kWriteIdempotent:
      return "idempotent-write";
  }
  return "unknown";
}

const char* CheckLevelName(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff:
      return "off";
    case CheckLevel::kBounds:
      return "bounds";
    case CheckLevel::kFull:
      return "full";
  }
  return "unknown";
}

GpuDevice::GpuDevice(const DeviceSpec& spec)
    : spec_(spec),
      mem_(spec),
      host_link_(spec.PcieBytesPerCycle(), spec.pcie_latency_cycles,
                 spec.pcie_frame_header_bytes, spec.pcie_max_payload_bytes),
      sms_(spec.num_sms) {}

void GpuDevice::BeginKernel() {
  if (in_kernel_ && sink_ != nullptr) {
    // Sanitizer mode: report the bracketing bug and recover (the previous
    // kernel is abandoned) instead of aborting the process.
    sink_->OnBracketingViolation("BeginKernel while another kernel is open");
  } else {
    SAGE_CHECK(!in_kernel_) << "BeginKernel without EndKernel";
  }
  in_kernel_ = true;
  ++kernel_seq_;
  std::fill(sms_.begin(), sms_.end(), SmCounters());
  if (sink_ != nullptr) sink_->OnKernelBegin(kernel_seq_);
  // Main-thread-only by construction: fault decisions are taken here, not
  // in worker-visible Access paths, so schedules replay bit-identically.
  if (injector_ != nullptr) injector_->OnBeginKernel(kernel_seq_);
}

void GpuDevice::set_fault_injector(FaultInjector* injector) {
  injector_ = injector;
  mem_.set_fault_injector(injector);
}

void GpuDevice::ChargeCompute(uint32_t sm, uint64_t cycles) {
  SAGE_DCHECK(in_kernel_);
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    rec->local_sm(sm).compute_cycles += cycles;
    return;
  }
  sms_[sm].compute_cycles += cycles;
}

void GpuDevice::ChargeTpOverhead(uint32_t sm, uint64_t cycles) {
  SAGE_DCHECK(in_kernel_);
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    SmCounters& c = rec->local_sm(sm);
    c.compute_cycles += cycles;
    c.tp_overhead_cycles += cycles;
    return;
  }
  sms_[sm].compute_cycles += cycles;
  sms_[sm].tp_overhead_cycles += cycles;
}

void GpuDevice::ChargeWarps(uint32_t sm, uint64_t count) {
  SAGE_DCHECK(in_kernel_);
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    rec->local_sm(sm).warps_launched += count;
    return;
  }
  sms_[sm].warps_launched += count;
}

AccessResult GpuDevice::Access(uint32_t sm, const Buffer& buffer,
                               std::span<const uint64_t> elem_indices,
                               AccessIntent intent) {
  if (sink_ != nullptr) {
    if (!in_kernel_) {
      sink_->OnBracketingViolation("Access outside BeginKernel/EndKernel");
    }
    sink_->OnAccess(sm, buffer, elem_indices, intent);
    // Sanitizer semantics: out-of-bounds lanes were reported above; charge
    // only the valid subset so the memory model sees real addresses.
    bool oob = false;
    for (uint64_t i : elem_indices) {
      if (i >= buffer.num_elems) {
        oob = true;
        break;
      }
    }
    if (oob) {
      std::vector<uint64_t> valid;
      valid.reserve(elem_indices.size());
      for (uint64_t i : elem_indices) {
        if (i < buffer.num_elems) valid.push_back(i);
      }
      return AccessCharged(sm, buffer, valid);
    }
  }
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    return rec->RecordAccess(sm, buffer, elem_indices);
  }
  return AccessCharged(sm, buffer, elem_indices);
}

AccessResult GpuDevice::AccessCharged(uint32_t sm, const Buffer& buffer,
                                      std::span<const uint64_t> elem_indices) {
  // With a sink attached the device runs in sanitizer mode: the bracketing
  // violation was already reported and execution recovers; only sink-less
  // runs treat it as a programming error.
  SAGE_DCHECK(in_kernel_ || sink_ != nullptr);
  // Empty device batches are charge-free; empty host batches still run
  // through the link-charge tail (they never occur in practice, but the
  // replay path reproduces immediate mode exactly, quirks included).
  if (elem_indices.empty() && buffer.space == MemSpace::kDevice) {
    return AccessResult();
  }
  mem_.CollectSectors(buffer, elem_indices, &scratch_idx_);
  return ChargeSectorBatch(sm, buffer.space, scratch_idx_,
                           elem_indices.size() * buffer.elem_bytes);
}

AccessResult GpuDevice::ChargeSectorBatch(uint32_t sm, MemSpace space,
                                          std::span<const uint64_t> sectors,
                                          uint64_t useful_bytes) {
  AccessResult result = mem_.AccessSectors(space, sectors, useful_bytes);
  if (space == MemSpace::kDevice) {
    ApplyDeviceCounters(sm, result);
  } else if (tile_cache_.enabled() && !sectors.empty()) {
    // SageCache: resident tiles are served from device memory at DRAM
    // cost; missing tiles page in as full aligned sector ranges, which the
    // frame model merges into maximal payloads.
    SmCounters& c = sms_[sm];
    uint64_t hits = tile_cache_.Access(sectors, &cache_fetch_scratch_);
    if (hits > 0) {
      c.miss_sectors += hits;  // device DRAM service, not L2
      ++c.dram_latency_events;
    }
    if (!cache_fetch_scratch_.empty()) {
      LinkModel::Transfer t =
          host_link_.RequestSectors(cache_fetch_scratch_, spec_.sector_bytes);
      c.host_link_cycles += t.cycles - spec_.pcie_latency_cycles;
      ++c.host_latency_events;
    }
  } else {
    // On-demand host access: run the sorted distinct sector list through
    // the frame model.
    SmCounters& c = sms_[sm];
    LinkModel::Transfer t =
        host_link_.RequestSectors(sectors, spec_.sector_bytes);
    // Bandwidth part serializes on the link; latency part is a stall event.
    c.host_link_cycles += t.cycles - spec_.pcie_latency_cycles;
    ++c.host_latency_events;
  }
  return result;
}

void GpuDevice::ApplyDeviceCounters(uint32_t sm, const AccessResult& result) {
  SmCounters& c = sms_[sm];
  c.hit_sectors += result.l2_hits;
  c.miss_sectors += result.l2_misses;
  if (result.l2_misses > 0) {
    ++c.dram_latency_events;
  } else if (result.l2_hits > 0) {
    ++c.l2_latency_events;
  }
}

AccessResult GpuDevice::AccessRange(uint32_t sm, const Buffer& buffer,
                                    uint64_t first, uint64_t count,
                                    AccessIntent intent) {
  if (sink_ != nullptr) {
    if (!in_kernel_) {
      sink_->OnBracketingViolation("Access outside BeginKernel/EndKernel");
    }
    sink_->OnAccessRange(sm, buffer, first, count, intent);
    // Clamp an overflowing range to the buffer after reporting it.
    if (first >= buffer.num_elems) {
      count = 0;
    } else if (first + count > buffer.num_elems) {
      count = buffer.num_elems - first;
    }
  }
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    return rec->RecordAccessRange(sm, buffer, first, count);
  }
  SAGE_DCHECK(in_kernel_ || sink_ != nullptr);
  if (count == 0 && buffer.space == MemSpace::kDevice) return AccessResult();
  mem_.CollectSectorRange(buffer, first, count, &scratch_idx_);
  return ChargeSectorBatch(sm, buffer.space, scratch_idx_,
                           count * buffer.elem_bytes);
}

void GpuDevice::ReplayTraces(std::span<KernelTraceRecorder* const> recorders,
                             util::ThreadPool* pool) {
  for (KernelTraceRecorder* rec : recorders) rec->MergeCountersInto(&sms_);

  // Canonical total order: unit rank, then issue order within the unit.
  // Each unit ran on exactly one worker, which appended its events in
  // issue order, so every unit's events form one contiguous run inside one
  // recorder's stream. Cutting the streams into runs and dropping each run
  // into a rank-indexed table reconstructs the exact sequence serial
  // execution would have charged — O(events + units), no sort.
  replay_runs_.clear();
  uint64_t max_unit = 0;
  bool any = false;
  bool table_ok = true;
  for (uint32_t r = 0; r < recorders.size(); ++r) {
    const std::vector<KernelTraceRecorder::Event>& evs =
        recorders[r]->events();
    size_t i = 0;
    while (i < evs.size()) {
      uint64_t unit = evs[i].unit;
      size_t j = i + 1;
      while (j < evs.size() && evs[j].unit == unit) ++j;
      replay_runs_.push_back(ReplayRun{unit, r, static_cast<uint32_t>(i),
                                       static_cast<uint32_t>(j - i)});
      if (!any || unit > max_unit) max_unit = unit;
      any = true;
      i = j;
    }
  }
  if (!any) return;  // counters merged; no memory events to charge

  replay_units_.assign(max_unit + 1, ReplayRun());
  for (const ReplayRun& run : replay_runs_) {
    ReplayRun& slot = replay_units_[run.unit];
    if (slot.count != 0) {
      // A unit recorded in two separate runs — contract violation for the
      // engine's stage bodies, but recoverable: fall back to sorting the
      // runs (still far fewer than events).
      SAGE_DCHECK(false) << "unit " << run.unit
                         << " traced in multiple runs; sorting fallback";
      table_ok = false;
      break;
    }
    slot = run;
  }
  if (!table_ok) {
    std::stable_sort(
        replay_runs_.begin(), replay_runs_.end(),
        [](const ReplayRun& a, const ReplayRun& b) { return a.unit < b.unit; });
  }
  std::span<const ReplayRun> order =
      table_ok ? std::span<const ReplayRun>(replay_units_)
               : std::span<const ReplayRun>(replay_runs_);

  // Decide every device batch's L2 outcome via the sliced replay.
  replay_batches_.clear();
  for (const ReplayRun& run : order) {
    const KernelTraceRecorder* rec = recorders[run.rec];
    for (uint32_t k = run.begin; k < run.begin + run.count; ++k) {
      const KernelTraceRecorder::Event& e = rec->events()[k];
      if (e.space == MemSpace::kDevice) {
        replay_batches_.push_back(rec->sectors_of(e));
      }
    }
  }
  mem_.ProbeBatches(replay_batches_, pool, &replay_probes_);

  // Apply stats and SM/link charges serially in canonical order — the same
  // statement sequence immediate mode executes, so every accumulator
  // (including the floating-point link cycles) sums in the same order.
  size_t p = 0;
  for (const ReplayRun& run : order) {
    const KernelTraceRecorder* rec = recorders[run.rec];
    for (uint32_t k = run.begin; k < run.begin + run.count; ++k) {
      const KernelTraceRecorder::Event& e = rec->events()[k];
      if (e.space == MemSpace::kDevice) {
        const BatchProbe& probe = replay_probes_[p++];
        AccessResult result = mem_.ApplySectorStats(
            MemSpace::kDevice, e.sector_count, probe.l2_hits, probe.l2_misses,
            e.useful_bytes);
        ApplyDeviceCounters(e.sm, result);
      } else {
        ChargeSectorBatch(e.sm, MemSpace::kHost, rec->sectors_of(e),
                          e.useful_bytes);
      }
    }
  }
}

void GpuDevice::NoteBufferWrite(const Buffer& buffer, uint64_t first,
                                uint64_t count, AccessIntent intent) {
  if (sink_ != nullptr) sink_->OnBufferNote(buffer, first, count, intent);
}

void GpuDevice::FenceKernelPhase() {
  if (sink_ == nullptr) return;
  if (!in_kernel_) {
    sink_->OnBracketingViolation("FenceKernelPhase outside a kernel");
    return;
  }
  sink_->OnPhaseFence(kernel_seq_);
}

void GpuDevice::SetSmPermutation(std::vector<uint32_t> perm) {
  if (perm.empty()) {
    sm_perm_.clear();
    return;
  }
  SAGE_CHECK_EQ(perm.size(), spec_.num_sms);
  std::vector<bool> seen(perm.size(), false);
  for (uint32_t s : perm) {
    SAGE_CHECK(s < perm.size() && !seen[s]) << "not a permutation of SM ids";
    seen[s] = true;
  }
  sm_perm_ = std::move(perm);
}

void GpuDevice::ChargeAtomicConflicts(uint32_t sm, uint64_t n) {
  SAGE_DCHECK(in_kernel_);
  if (KernelTraceRecorder* rec = BoundRecorder()) {
    SmCounters& c = rec->local_sm(sm);
    c.atomic_conflicts += n;
    c.compute_cycles += n * spec_.atomic_conflict_cycles;
    return;
  }
  sms_[sm].atomic_conflicts += n;
  sms_[sm].compute_cycles += n * spec_.atomic_conflict_cycles;
}

void GpuDevice::ChargeStreamingBytes(uint32_t sm, uint64_t bytes) {
  SAGE_DCHECK(in_kernel_);
  // warps_launched folds via max here — not commutative across shards, so
  // streaming charges are serial-only (no traversal hot path uses them).
  SAGE_DCHECK(BoundRecorder() == nullptr)
      << "ChargeStreamingBytes is not traceable";
  SmCounters& c = sms_[sm];
  c.miss_sectors += (bytes + spec_.sector_bytes - 1) / spec_.sector_bytes;
  ++c.dram_latency_events;
  c.warps_launched = std::max<uint64_t>(c.warps_launched, 8);
}

LinkModel::Transfer GpuDevice::BulkHostTransfer(uint64_t payload_bytes) {
  SAGE_DCHECK(BoundRecorder() == nullptr)
      << "BulkHostTransfer is not traceable";
  return host_link_.BulkTransfer(payload_bytes);
}

double GpuDevice::SmBusyProxy(uint32_t sm) const {
  const SmCounters& c = sms_[sm];
  double service =
      static_cast<double>(c.hit_sectors) * spec_.l2_hit_sector_cycles +
      static_cast<double>(c.miss_sectors) * spec_.dram_sector_cycles +
      c.host_link_cycles;
  return static_cast<double>(c.compute_cycles) + service;
}

uint32_t GpuDevice::LeastLoadedSm() const {
  // Reads live counters — meaningless while charges sit in worker shards.
  SAGE_DCHECK(BoundRecorder() == nullptr) << "LeastLoadedSm is not traceable";
  // Scan in permuted order when a permutation is installed so equal-load
  // ties break differently (the determinism harness perturbs exactly this).
  uint32_t best = sm_perm_.empty() ? 0 : sm_perm_[0];
  double best_load = SmBusyProxy(best);
  for (uint32_t i = 1; i < sms_.size(); ++i) {
    uint32_t s = sm_perm_.empty() ? i : sm_perm_[i];
    double load = SmBusyProxy(s);
    if (load < best_load) {
      best_load = load;
      best = s;
    }
  }
  return best;
}

uint32_t GpuDevice::ArgMinSm(std::span<const double> loads) const {
  SAGE_DCHECK(loads.size() == sms_.size());
  // Same permuted scan order and strict-< tie-break as LeastLoadedSm.
  uint32_t best = sm_perm_.empty() ? 0 : sm_perm_[0];
  double best_load = loads[best];
  for (uint32_t i = 1; i < loads.size(); ++i) {
    uint32_t s = sm_perm_.empty() ? i : sm_perm_[i];
    if (loads[s] < best_load) {
      best_load = loads[s];
      best = s;
    }
  }
  return best;
}

KernelResult GpuDevice::EndKernel() {
  if (!in_kernel_ && sink_ != nullptr) {
    sink_->OnBracketingViolation("EndKernel without BeginKernel");
    return KernelResult();
  }
  SAGE_CHECK(in_kernel_) << "EndKernel without BeginKernel";
  if (sink_ != nullptr) sink_->OnKernelEnd(kernel_seq_);
  in_kernel_ = false;
  KernelResult result;
  double max_cycles = 0.0;
  double min_busy = -1.0;
  double max_busy = 0.0;
  uint64_t tp_total = 0;
  double total_link_cycles = 0.0;
  if (totals_.sm_sectors.size() < sms_.size()) {
    totals_.sm_sectors.resize(sms_.size(), 0);
  }
  for (uint32_t s = 0; s < sms_.size(); ++s) {
    const SmCounters& c = sms_[s];
    totals_.sm_sectors[s] += c.hit_sectors + c.miss_sectors;
    double service =
        static_cast<double>(c.hit_sectors) * spec_.l2_hit_sector_cycles +
        static_cast<double>(c.miss_sectors) * spec_.dram_sector_cycles +
        c.host_link_cycles;
    double busy = std::max(static_cast<double>(c.compute_cycles), service);
    uint64_t resident = std::min<uint64_t>(
        std::max<uint64_t>(c.warps_launched, 1), spec_.max_resident_warps);
    double hide =
        1.0 + spec_.latency_hide_per_warp * static_cast<double>(resident - 1);
    double raw_latency =
        static_cast<double>(c.l2_latency_events) * spec_.l2_latency_cycles +
        static_cast<double>(c.dram_latency_events) * spec_.dram_latency_cycles +
        static_cast<double>(c.host_latency_events) * spec_.pcie_latency_cycles;
    double exposed = raw_latency / hide;
    double t_sm = busy + exposed;
    // Straggler-SM fault injection: a pure timing multiplier (outputs are
    // untouched; deadlines are what notice).
    if (injector_ != nullptr) t_sm *= injector_->SmLatencyMultiplier(s);
    max_cycles = std::max(max_cycles, t_sm);
    if (min_busy < 0.0 || t_sm < min_busy) min_busy = t_sm;
    max_busy = std::max(max_busy, t_sm);
    result.total_compute_cycles += c.compute_cycles;
    tp_total += c.tp_overhead_cycles;
    result.total_sectors += c.hit_sectors + c.miss_sectors;
    total_link_cycles += c.host_link_cycles;
  }
  result.total_tp_overhead_cycles = tp_total;
  // The host link is one device-wide resource: its aggregate service time
  // lower-bounds the kernel regardless of how SMs shared it.
  max_cycles = std::max(max_cycles, total_link_cycles);
  result.max_sm_cycles = max_cycles + spec_.kernel_launch_cycles;
  result.min_sm_busy = std::max(min_busy, 0.0);
  result.max_sm_busy = max_busy;
  result.seconds = CyclesToSeconds(result.max_sm_cycles);

  if (timeline_enabled_) {
    KernelRecord rec;
    rec.seq = kernel_seq_;
    rec.start_seconds = totals_.seconds;  // cumulative before this kernel
    rec.seconds = result.seconds;
    rec.sectors = result.total_sectors;
    rec.compute_cycles = result.total_compute_cycles;
    rec.tp_overhead_cycles = result.total_tp_overhead_cycles;
    rec.label = kernel_label_;
    totals_.kernel_records.push_back(std::move(rec));
  }
  totals_.seconds += result.seconds;
  totals_.kernels += 1;
  // TP overhead runs spread across the SMs, so convert its aggregate cycle
  // count to wall time at device (not single-SM) rate for Table 3.
  totals_.tp_overhead_seconds +=
      CyclesToSeconds(static_cast<double>(tp_total) / spec_.num_sms);
  totals_.per_kernel_seconds.push_back(result.seconds);
  return result;
}

void GpuDevice::ResetTotals() {
  totals_ = DeviceTotals();
  mem_.ResetStats();
  host_link_.ResetStats();
}

void GpuDevice::AddExternalSeconds(double seconds) {
  totals_.seconds += seconds;
}

}  // namespace sage::sim
