#include "sim/gpu_device.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::sim {

const char* AccessIntentName(AccessIntent intent) {
  switch (intent) {
    case AccessIntent::kRead:
      return "read";
    case AccessIntent::kWrite:
      return "write";
    case AccessIntent::kAtomic:
      return "atomic";
    case AccessIntent::kWriteIdempotent:
      return "idempotent-write";
  }
  return "unknown";
}

const char* CheckLevelName(CheckLevel level) {
  switch (level) {
    case CheckLevel::kOff:
      return "off";
    case CheckLevel::kBounds:
      return "bounds";
    case CheckLevel::kFull:
      return "full";
  }
  return "unknown";
}

GpuDevice::GpuDevice(const DeviceSpec& spec)
    : spec_(spec),
      mem_(spec),
      host_link_(spec.PcieBytesPerCycle(), spec.pcie_latency_cycles,
                 spec.pcie_frame_header_bytes, spec.pcie_max_payload_bytes),
      sms_(spec.num_sms) {}

void GpuDevice::BeginKernel() {
  if (in_kernel_ && sink_ != nullptr) {
    // Sanitizer mode: report the bracketing bug and recover (the previous
    // kernel is abandoned) instead of aborting the process.
    sink_->OnBracketingViolation("BeginKernel while another kernel is open");
  } else {
    SAGE_CHECK(!in_kernel_) << "BeginKernel without EndKernel";
  }
  in_kernel_ = true;
  ++kernel_seq_;
  std::fill(sms_.begin(), sms_.end(), SmCounters());
  if (sink_ != nullptr) sink_->OnKernelBegin(kernel_seq_);
}

void GpuDevice::ChargeCompute(uint32_t sm, uint64_t cycles) {
  SAGE_DCHECK(in_kernel_);
  sms_[sm].compute_cycles += cycles;
}

void GpuDevice::ChargeTpOverhead(uint32_t sm, uint64_t cycles) {
  SAGE_DCHECK(in_kernel_);
  sms_[sm].compute_cycles += cycles;
  sms_[sm].tp_overhead_cycles += cycles;
}

void GpuDevice::ChargeWarps(uint32_t sm, uint64_t count) {
  SAGE_DCHECK(in_kernel_);
  sms_[sm].warps_launched += count;
}

AccessResult GpuDevice::Access(uint32_t sm, const Buffer& buffer,
                               const std::vector<uint64_t>& elem_indices,
                               AccessIntent intent) {
  if (sink_ != nullptr) {
    if (!in_kernel_) {
      sink_->OnBracketingViolation("Access outside BeginKernel/EndKernel");
    }
    sink_->OnAccess(sm, buffer, elem_indices, intent);
    // Sanitizer semantics: out-of-bounds lanes were reported above; charge
    // only the valid subset so the memory model sees real addresses.
    bool oob = false;
    for (uint64_t i : elem_indices) {
      if (i >= buffer.num_elems) {
        oob = true;
        break;
      }
    }
    if (oob) {
      std::vector<uint64_t> valid;
      valid.reserve(elem_indices.size());
      for (uint64_t i : elem_indices) {
        if (i < buffer.num_elems) valid.push_back(i);
      }
      return AccessCharged(sm, buffer, valid);
    }
  }
  return AccessCharged(sm, buffer, elem_indices);
}

AccessResult GpuDevice::AccessCharged(
    uint32_t sm, const Buffer& buffer,
    const std::vector<uint64_t>& elem_indices) {
  // With a sink attached the device runs in sanitizer mode: the bracketing
  // violation was already reported and execution recovers; only sink-less
  // runs treat it as a programming error.
  SAGE_DCHECK(in_kernel_ || sink_ != nullptr);
  AccessResult result = mem_.Access(buffer, elem_indices);
  SmCounters& c = sms_[sm];
  if (buffer.space == MemSpace::kDevice) {
    c.hit_sectors += result.l2_hits;
    c.miss_sectors += result.l2_misses;
    if (result.l2_misses > 0) {
      ++c.dram_latency_events;
    } else if (result.l2_hits > 0) {
      ++c.l2_latency_events;
    }
  } else {
    // On-demand host access: build the sorted distinct sector list and run
    // it through the frame model.
    auto& sectors = scratch_idx_;
    sectors.clear();
    for (uint64_t i : elem_indices) {
      sectors.push_back(buffer.Addr(i) / spec_.sector_bytes);
    }
    std::sort(sectors.begin(), sectors.end());
    sectors.erase(std::unique(sectors.begin(), sectors.end()), sectors.end());
    LinkModel::Transfer t = host_link_.RequestSectors(sectors,
                                                      spec_.sector_bytes);
    // Bandwidth part serializes on the link; latency part is a stall event.
    c.host_link_cycles += t.cycles - spec_.pcie_latency_cycles;
    ++c.host_latency_events;
  }
  return result;
}

AccessResult GpuDevice::AccessRange(uint32_t sm, const Buffer& buffer,
                                    uint64_t first, uint64_t count,
                                    AccessIntent intent) {
  if (sink_ != nullptr) {
    if (!in_kernel_) {
      sink_->OnBracketingViolation("Access outside BeginKernel/EndKernel");
    }
    sink_->OnAccessRange(sm, buffer, first, count, intent);
    // Clamp an overflowing range to the buffer after reporting it.
    if (first >= buffer.num_elems) {
      count = 0;
    } else if (first + count > buffer.num_elems) {
      count = buffer.num_elems - first;
    }
  }
  auto& idx = scratch_idx_;
  idx.clear();
  for (uint64_t i = 0; i < count; ++i) idx.push_back(first + i);
  // scratch_idx_ is reused inside AccessCharged for host buffers; copy
  // locally.
  std::vector<uint64_t> local(idx.begin(), idx.end());
  return AccessCharged(sm, buffer, local);
}

void GpuDevice::NoteBufferWrite(const Buffer& buffer, uint64_t first,
                                uint64_t count, AccessIntent intent) {
  if (sink_ != nullptr) sink_->OnBufferNote(buffer, first, count, intent);
}

void GpuDevice::FenceKernelPhase() {
  if (sink_ == nullptr) return;
  if (!in_kernel_) {
    sink_->OnBracketingViolation("FenceKernelPhase outside a kernel");
    return;
  }
  sink_->OnPhaseFence(kernel_seq_);
}

void GpuDevice::SetSmPermutation(std::vector<uint32_t> perm) {
  if (perm.empty()) {
    sm_perm_.clear();
    return;
  }
  SAGE_CHECK_EQ(perm.size(), spec_.num_sms);
  std::vector<bool> seen(perm.size(), false);
  for (uint32_t s : perm) {
    SAGE_CHECK(s < perm.size() && !seen[s]) << "not a permutation of SM ids";
    seen[s] = true;
  }
  sm_perm_ = std::move(perm);
}

void GpuDevice::ChargeAtomicConflicts(uint32_t sm, uint64_t n) {
  SAGE_DCHECK(in_kernel_);
  sms_[sm].atomic_conflicts += n;
  sms_[sm].compute_cycles += n * spec_.atomic_conflict_cycles;
}

void GpuDevice::ChargeStreamingBytes(uint32_t sm, uint64_t bytes) {
  SAGE_DCHECK(in_kernel_);
  SmCounters& c = sms_[sm];
  c.miss_sectors += (bytes + spec_.sector_bytes - 1) / spec_.sector_bytes;
  ++c.dram_latency_events;
  c.warps_launched = std::max<uint64_t>(c.warps_launched, 8);
}

LinkModel::Transfer GpuDevice::BulkHostTransfer(uint64_t payload_bytes) {
  return host_link_.BulkTransfer(payload_bytes);
}

double GpuDevice::SmBusyProxy(uint32_t sm) const {
  const SmCounters& c = sms_[sm];
  double service =
      static_cast<double>(c.hit_sectors) * spec_.l2_hit_sector_cycles +
      static_cast<double>(c.miss_sectors) * spec_.dram_sector_cycles +
      c.host_link_cycles;
  return static_cast<double>(c.compute_cycles) + service;
}

uint32_t GpuDevice::LeastLoadedSm() const {
  // Scan in permuted order when a permutation is installed so equal-load
  // ties break differently (the determinism harness perturbs exactly this).
  uint32_t best = sm_perm_.empty() ? 0 : sm_perm_[0];
  double best_load = SmBusyProxy(best);
  for (uint32_t i = 1; i < sms_.size(); ++i) {
    uint32_t s = sm_perm_.empty() ? i : sm_perm_[i];
    double load = SmBusyProxy(s);
    if (load < best_load) {
      best_load = load;
      best = s;
    }
  }
  return best;
}

KernelResult GpuDevice::EndKernel() {
  if (!in_kernel_ && sink_ != nullptr) {
    sink_->OnBracketingViolation("EndKernel without BeginKernel");
    return KernelResult();
  }
  SAGE_CHECK(in_kernel_) << "EndKernel without BeginKernel";
  if (sink_ != nullptr) sink_->OnKernelEnd(kernel_seq_);
  in_kernel_ = false;
  KernelResult result;
  double max_cycles = 0.0;
  double min_busy = -1.0;
  double max_busy = 0.0;
  uint64_t tp_total = 0;
  double total_link_cycles = 0.0;
  for (uint32_t s = 0; s < sms_.size(); ++s) {
    const SmCounters& c = sms_[s];
    double service =
        static_cast<double>(c.hit_sectors) * spec_.l2_hit_sector_cycles +
        static_cast<double>(c.miss_sectors) * spec_.dram_sector_cycles +
        c.host_link_cycles;
    double busy = std::max(static_cast<double>(c.compute_cycles), service);
    uint64_t resident = std::min<uint64_t>(
        std::max<uint64_t>(c.warps_launched, 1), spec_.max_resident_warps);
    double hide =
        1.0 + spec_.latency_hide_per_warp * static_cast<double>(resident - 1);
    double raw_latency =
        static_cast<double>(c.l2_latency_events) * spec_.l2_latency_cycles +
        static_cast<double>(c.dram_latency_events) * spec_.dram_latency_cycles +
        static_cast<double>(c.host_latency_events) * spec_.pcie_latency_cycles;
    double exposed = raw_latency / hide;
    double t_sm = busy + exposed;
    max_cycles = std::max(max_cycles, t_sm);
    if (min_busy < 0.0 || t_sm < min_busy) min_busy = t_sm;
    max_busy = std::max(max_busy, t_sm);
    result.total_compute_cycles += c.compute_cycles;
    tp_total += c.tp_overhead_cycles;
    result.total_sectors += c.hit_sectors + c.miss_sectors;
    total_link_cycles += c.host_link_cycles;
  }
  result.total_tp_overhead_cycles = tp_total;
  // The host link is one device-wide resource: its aggregate service time
  // lower-bounds the kernel regardless of how SMs shared it.
  max_cycles = std::max(max_cycles, total_link_cycles);
  result.max_sm_cycles = max_cycles + spec_.kernel_launch_cycles;
  result.min_sm_busy = std::max(min_busy, 0.0);
  result.max_sm_busy = max_busy;
  result.seconds = CyclesToSeconds(result.max_sm_cycles);

  totals_.seconds += result.seconds;
  totals_.kernels += 1;
  // TP overhead runs spread across the SMs, so convert its aggregate cycle
  // count to wall time at device (not single-SM) rate for Table 3.
  totals_.tp_overhead_seconds +=
      CyclesToSeconds(static_cast<double>(tp_total) / spec_.num_sms);
  totals_.per_kernel_seconds.push_back(result.seconds);
  return result;
}

void GpuDevice::ResetTotals() {
  totals_ = DeviceTotals();
  mem_.ResetStats();
  host_link_.ResetStats();
}

void GpuDevice::AddExternalSeconds(double seconds) {
  totals_.seconds += seconds;
}

}  // namespace sage::sim
