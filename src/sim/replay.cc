#include "sim/replay.h"

#include "sim/gpu_device.h"
#include "util/logging.h"

namespace sage::sim {

KernelTraceRecorder::KernelTraceRecorder(GpuDevice* device)
    : device_(device), sms_(device->spec().num_sms) {}

void KernelTraceRecorder::Reset() {
  std::fill(sms_.begin(), sms_.end(), SmCounters());
  events_.clear();
  sector_pool_.clear();
  current_unit_ = 0;
}

AccessResult KernelTraceRecorder::RecordCollected(uint32_t sm, MemSpace space,
                                                  uint64_t useful_bytes) {
  Event e;
  e.unit = current_unit_;
  e.sector_begin = sector_pool_.size();
  e.sector_count = static_cast<uint32_t>(scratch_.size());
  e.sm = sm;
  e.useful_bytes = useful_bytes;
  e.space = space;
  sector_pool_.insert(sector_pool_.end(), scratch_.begin(), scratch_.end());
  events_.push_back(e);

  AccessResult result;
  result.sectors = e.sector_count;
  result.useful_bytes = static_cast<uint32_t>(useful_bytes);
  return result;
}

AccessResult KernelTraceRecorder::RecordAccess(
    uint32_t sm, const Buffer& buffer,
    std::span<const uint64_t> elem_indices) {
  // Immediate mode skips empty device batches entirely but still runs empty
  // host batches through the link-charge tail; mirror both.
  if (elem_indices.empty() && buffer.space == MemSpace::kDevice) {
    return AccessResult();
  }
  device_->mem().CollectSectors(buffer, elem_indices, &scratch_);
  return RecordCollected(sm, buffer.space,
                         elem_indices.size() * buffer.elem_bytes);
}

AccessResult KernelTraceRecorder::RecordAccessRange(uint32_t sm,
                                                    const Buffer& buffer,
                                                    uint64_t first,
                                                    uint64_t count) {
  if (count == 0 && buffer.space == MemSpace::kDevice) return AccessResult();
  device_->mem().CollectSectorRange(buffer, first, count, &scratch_);
  return RecordCollected(sm, buffer.space, count * buffer.elem_bytes);
}

void KernelTraceRecorder::MergeCountersInto(std::vector<SmCounters>* sms) const {
  SAGE_DCHECK(sms->size() == sms_.size());
  for (size_t s = 0; s < sms_.size(); ++s) {
    const SmCounters& c = sms_[s];
    SAGE_DCHECK(c.hit_sectors == 0 && c.miss_sectors == 0 &&
                c.l2_latency_events == 0 && c.dram_latency_events == 0 &&
                c.host_latency_events == 0 && c.host_link_cycles == 0.0)
        << "memory charges must flow through replay, not worker shards";
    (*sms)[s].compute_cycles += c.compute_cycles;
    (*sms)[s].tp_overhead_cycles += c.tp_overhead_cycles;
    (*sms)[s].warps_launched += c.warps_launched;
    (*sms)[s].atomic_conflicts += c.atomic_conflicts;
  }
}

}  // namespace sage::sim
