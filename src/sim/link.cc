#include "sim/link.h"

#include "util/logging.h"

namespace sage::sim {

LinkModel::LinkModel(double bytes_per_cycle, uint32_t latency_cycles,
                     uint32_t frame_header_bytes, uint32_t max_payload_bytes)
    : bytes_per_cycle_(bytes_per_cycle),
      latency_cycles_(latency_cycles),
      frame_header_bytes_(frame_header_bytes),
      max_payload_bytes_(max_payload_bytes) {
  SAGE_CHECK_GT(bytes_per_cycle, 0.0);
  SAGE_CHECK_GT(max_payload_bytes, 0u);
}

LinkModel::Transfer LinkModel::Finish(uint64_t frames, uint64_t payload) {
  Transfer t;
  t.frames = frames;
  t.payload_bytes = payload;
  t.wire_bytes = payload + frames * frame_header_bytes_;
  t.cycles = static_cast<double>(latency_cycles_) +
             static_cast<double>(t.wire_bytes) / bytes_per_cycle_;
  ++stats_.transfers;
  stats_.frames += t.frames;
  stats_.payload_bytes += t.payload_bytes;
  stats_.wire_bytes += t.wire_bytes;
  stats_.busy_cycles += t.cycles;
  return t;
}

LinkModel::Transfer LinkModel::RequestSectors(
    std::span<const uint64_t> sorted_sector_ids, uint32_t sector_bytes) {
  if (sorted_sector_ids.empty()) return Transfer{};
  const uint64_t sectors_per_frame =
      std::max<uint64_t>(1, max_payload_bytes_ / sector_bytes);
  uint64_t frames = 0;
  uint64_t run_len = 0;
  uint64_t prev = ~0ull;
  for (uint64_t s : sorted_sector_ids) {
    SAGE_DCHECK(prev == ~0ull || s >= prev);
    if (run_len > 0 && s == prev + 1 && run_len < sectors_per_frame) {
      ++run_len;
    } else if (run_len > 0 && s == prev) {
      // duplicate sector (caller should have deduped; tolerate it)
      continue;
    } else {
      ++frames;
      run_len = 1;
    }
    prev = s;
  }
  return Finish(frames,
                static_cast<uint64_t>(sorted_sector_ids.size()) * sector_bytes);
}

LinkModel::Transfer LinkModel::BulkTransfer(uint64_t payload_bytes) {
  if (payload_bytes == 0) return Transfer{};
  uint64_t frames =
      (payload_bytes + max_payload_bytes_ - 1) / max_payload_bytes_;
  return Finish(frames, payload_bytes);
}

}  // namespace sage::sim
