#include "sim/fault_injector.h"

#include <cstdio>
#include <sstream>

#include "util/random.h"

namespace sage::sim {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kTransientKernel:
      return "transient";
    case FaultKind::kDeviceOom:
      return "oom";
    case FaultKind::kSectorCorruption:
      return "corrupt";
    case FaultKind::kCheckpointCorruption:
      return "corrupt-checkpoint";
    case FaultKind::kStragglerSm:
      return "straggler";
    case FaultKind::kPoisonedSource:
      return "poison";
  }
  return "unknown";
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << FaultKindName(kind);
  if (kernel_seq != 0) os << " kernel=" << kernel_seq;
  if (iteration >= 0) os << " iter=" << iteration;
  if (kind == FaultKind::kStragglerSm) os << " sm=" << sm;
  if (!detail.empty()) os << " " << detail;
  return os.str();
}

namespace {

/// Splits a spec line into whitespace tokens, dropping `#` comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : line) {
    if (c == '#') break;
    if (c == ' ' || c == '\t' || c == '\r') {
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  char extra;
  return std::sscanf(s.c_str(), "%lf%c", out, &extra) == 1;
}

util::Status BadLine(int lineno, const std::string& why) {
  std::ostringstream os;
  os << "fault spec line " << lineno << ": " << why;
  return util::Status::InvalidArgument(os.str());
}

/// Charges one firing against the rule's `count N` budget; false once the
/// rule is exhausted. Unbudgeted rules always pass.
bool Admit(FaultRule& rule) {
  if (rule.max_fires >= 0 && rule.fires >= rule.max_fires) return false;
  ++rule.fires;
  return true;
}

}  // namespace

util::StatusOr<FaultSpec> ParseFaultSpec(const std::string& text) {
  FaultSpec spec;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::vector<std::string> tok = Tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];
    if (kw == "seed") {
      if (tok.size() != 2 || !ParseU64(tok[1], &spec.seed)) {
        return BadLine(lineno, "expected: seed <u64>");
      }
      continue;
    }
    FaultRule rule;
    size_t i = 1;
    if (kw == "transient") {
      rule.kind = FaultKind::kTransientKernel;
    } else if (kw == "oom") {
      rule.kind = FaultKind::kDeviceOom;
    } else if (kw == "corrupt") {
      rule.kind = FaultKind::kSectorCorruption;
    } else if (kw == "corrupt-checkpoint") {
      rule.kind = FaultKind::kCheckpointCorruption;
    } else if (kw == "straggler") {
      rule.kind = FaultKind::kStragglerSm;
    } else if (kw == "poison") {
      rule.kind = FaultKind::kPoisonedSource;
    } else {
      return BadLine(lineno, "unknown fault kind '" + kw + "'");
    }
    // Key/value tail, order-free: rate <p> | kernel <k> | iter <i> |
    // grow <n> | sm <s> | x <mult> | node <n> | count <n> | silent.
    while (i < tok.size()) {
      const std::string& key = tok[i];
      if (key == "silent") {
        rule.silent = true;
        ++i;
        continue;
      }
      if (i + 1 >= tok.size()) {
        return BadLine(lineno, "'" + key + "' needs a value");
      }
      const std::string& val = tok[i + 1];
      uint64_t u = 0;
      if (key == "rate") {
        if (!ParseDouble(val, &rule.rate) || rule.rate < 0.0 ||
            rule.rate > 1.0) {
          return BadLine(lineno, "rate must be in [0, 1]");
        }
      } else if (key == "kernel") {
        if (!ParseU64(val, &u)) return BadLine(lineno, "bad kernel index");
        rule.kernel = static_cast<int64_t>(u);
      } else if (key == "iter") {
        if (!ParseU64(val, &u)) return BadLine(lineno, "bad iteration");
        rule.iteration = static_cast<int64_t>(u);
      } else if (key == "grow") {
        if (!ParseU64(val, &u)) return BadLine(lineno, "bad grow index");
        rule.grow_index = static_cast<int64_t>(u);
      } else if (key == "sm") {
        if (!ParseU64(val, &u)) return BadLine(lineno, "bad sm index");
        rule.sm = static_cast<uint32_t>(u);
      } else if (key == "x") {
        if (!ParseDouble(val, &rule.multiplier) || rule.multiplier < 1.0) {
          return BadLine(lineno, "multiplier must be >= 1.0");
        }
      } else if (key == "node") {
        if (!ParseU64(val, &rule.node)) return BadLine(lineno, "bad node id");
      } else if (key == "count") {
        if (!ParseU64(val, &u) || u == 0) {
          return BadLine(lineno, "count must be a positive integer");
        }
        rule.max_fires = static_cast<int64_t>(u);
      } else {
        return BadLine(lineno, "unknown key '" + key + "'");
      }
      i += 2;
    }
    // Every rule needs a trigger: a rate, an exact coordinate, or (for
    // stragglers/poison) its identity fields.
    bool has_trigger = rule.rate > 0.0 || rule.kernel >= 0 ||
                       rule.iteration >= 0 || rule.grow_index >= 0 ||
                       rule.kind == FaultKind::kStragglerSm ||
                       rule.kind == FaultKind::kPoisonedSource;
    if (!has_trigger) {
      return BadLine(lineno, "rule has no rate or coordinate trigger");
    }
    spec.rules.push_back(rule);
  }
  return spec;
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {
  straggler_logged_.assign(spec_.rules.size(), false);
}

bool FaultInjector::Draw(uint64_t salt, uint64_t counter, double rate) const {
  if (rate <= 0.0) return false;
  uint64_t h = util::SplitMix64(spec_.seed ^ salt ^ (counter * 0x9e3779b9u));
  // Top 53 bits → uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

void FaultInjector::RaisePending(util::Status status) {
  // First fault wins; later faults in the same window are subsumed (the
  // engine aborts the iteration on the first one anyway).
  if (pending_.ok()) {
    pending_ = std::move(status);
    last_fault_kernel_ = cur_kernel_;
    last_fault_iteration_ = cur_iteration_;
  }
}

void FaultInjector::Record(FaultKind kind, uint32_t sm, std::string detail) {
  FaultEvent ev;
  ev.kind = kind;
  ev.kernel_seq = cur_kernel_;
  ev.iteration = cur_iteration_;
  ev.sm = sm;
  ev.detail = std::move(detail);
  events_.push_back(std::move(ev));
}

void FaultInjector::OnBeginKernel(uint64_t kernel_seq) {
  cur_kernel_ = kernel_seq;
  active_stragglers_.clear();
  for (size_t r = 0; r < spec_.rules.size(); ++r) {
    FaultRule& rule = spec_.rules[r];
    switch (rule.kind) {
      case FaultKind::kTransientKernel: {
        bool fire = false;
        if (rule.kernel >= 0) {
          fire = !rule.fired &&
                 rule.kernel == static_cast<int64_t>(kernel_seq);
        } else {
          fire = Draw(/*salt=*/0x7261746bu, kernel_seq, rule.rate);
        }
        if (fire && Admit(rule)) {
          rule.fired = true;
          Record(FaultKind::kTransientKernel, 0, "");
          std::ostringstream os;
          os << "transient kernel fault (kernel=" << kernel_seq << ")";
          RaisePending(util::Status::Unavailable(os.str()));
        }
        break;
      }
      case FaultKind::kStragglerSm: {
        bool applies = rule.kernel < 0
                           ? true
                           : rule.kernel == static_cast<int64_t>(kernel_seq);
        if (applies && rule.rate > 0.0) {
          applies = Draw(/*salt=*/0x736c6f77u, kernel_seq ^ (rule.sm << 20),
                         rule.rate);
        }
        if (applies && Admit(rule)) {
          active_stragglers_.push_back({rule.sm, rule.multiplier});
          // Persistent stragglers would flood the trace; log first firing.
          if (!straggler_logged_[r]) {
            straggler_logged_[r] = true;
            std::ostringstream os;
            os << "x" << rule.multiplier;
            Record(FaultKind::kStragglerSm, rule.sm, os.str());
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

double FaultInjector::SmLatencyMultiplier(uint32_t sm) const {
  double m = 1.0;
  for (const ActiveStraggler& s : active_stragglers_) {
    if (s.sm == sm) m *= s.multiplier;
  }
  return m;
}

void FaultInjector::OnGrow(const std::string& buffer_name,
                           uint64_t new_num_elems) {
  ++grow_seq_;
  for (FaultRule& rule : spec_.rules) {
    if (rule.kind != FaultKind::kDeviceOom) continue;
    bool fire = false;
    if (rule.grow_index >= 0) {
      fire = !rule.fired && rule.grow_index == static_cast<int64_t>(grow_seq_);
    } else {
      fire = Draw(/*salt=*/0x6f6f6du, grow_seq_, rule.rate);
    }
    if (fire && Admit(rule)) {
      rule.fired = true;
      std::ostringstream os;
      os << "grow#" << grow_seq_ << " " << buffer_name << "->"
         << new_num_elems;
      Record(FaultKind::kDeviceOom, 0, os.str());
      std::ostringstream msg;
      msg << "device OOM growing '" << buffer_name << "' to " << new_num_elems
          << " elems (kernel=" << cur_kernel_ << ")";
      RaisePending(util::Status::Unavailable(msg.str()));
    }
  }
}

util::Status FaultInjector::TakePendingFault() {
  util::Status s = std::move(pending_);
  pending_ = util::Status::OK();
  return s;
}

bool FaultInjector::MaybeCorruptFrontier(int64_t iter,
                                         std::span<uint32_t> frontier,
                                         uint32_t limit) {
  if (frontier.empty() || limit == 0) return false;
  ++corrupt_seq_;
  bool flipped = false;
  for (FaultRule& rule : spec_.rules) {
    if (rule.kind != FaultKind::kSectorCorruption) continue;
    bool fire = false;
    if (rule.iteration >= 0) {
      fire = !rule.fired && rule.iteration == iter;
    } else {
      fire = Draw(/*salt=*/0x65636375u, corrupt_seq_, rule.rate);
    }
    if (!fire || !Admit(rule)) continue;
    rule.fired = true;
    // Deterministic victim: element and bit from the seed and the
    // opportunity counter (never from wall time or thread ids).
    uint64_t h = util::SplitMix64(spec_.seed ^ 0x62697466u ^ corrupt_seq_);
    size_t elem = static_cast<size_t>(h % frontier.size());
    uint32_t bit = static_cast<uint32_t>((h >> 32) % 32);
    frontier[elem] ^= (1u << bit);
    if (frontier[elem] >= limit) frontier[elem] %= limit;
    flipped = true;
    std::ostringstream os;
    os << "elem=" << elem << " bit=" << bit
       << (rule.silent ? " silent" : " detected");
    Record(FaultKind::kSectorCorruption, 0, os.str());
    if (!rule.silent) {
      std::ostringstream msg;
      msg << "uncorrectable ECC error in frontier (iter=" << iter
          << " kernel=" << cur_kernel_ << ")";
      RaisePending(util::Status::Unavailable(msg.str()));
    }
  }
  return flipped;
}

bool FaultInjector::MaybeCorruptCheckpoint(int64_t iter,
                                           std::span<uint8_t> payload) {
  if (payload.empty()) return false;
  ++ckpt_seq_;
  bool flipped = false;
  for (FaultRule& rule : spec_.rules) {
    if (rule.kind != FaultKind::kCheckpointCorruption) continue;
    bool fire = false;
    if (rule.iteration >= 0) {
      fire = !rule.fired && rule.iteration == iter;
    } else {
      fire = Draw(/*salt=*/0x636b7074u, ckpt_seq_, rule.rate);
    }
    if (!fire || !Admit(rule)) continue;
    rule.fired = true;
    uint64_t h = util::SplitMix64(spec_.seed ^ 0x70617966u ^ ckpt_seq_);
    size_t byte = static_cast<size_t>(h % payload.size());
    payload[byte] ^= static_cast<uint8_t>(1u << ((h >> 32) % 8));
    flipped = true;
    std::ostringstream os;
    os << "byte=" << byte;
    Record(FaultKind::kCheckpointCorruption, 0, os.str());
    // Silent by construction: the checkpoint digest is the detector.
  }
  return flipped;
}

bool FaultInjector::PoisonedSource(uint64_t orig_node) const {
  for (const FaultRule& rule : spec_.rules) {
    if (rule.kind == FaultKind::kPoisonedSource && rule.node == orig_node) {
      return true;
    }
  }
  return false;
}

std::string FaultInjector::TraceString() const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    out += ev.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace sage::sim
