#ifndef SAGE_SIM_MEMORY_SIM_H_
#define SAGE_SIM_MEMORY_SIM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/device_spec.h"
#include "util/stats.h"

namespace sage::util {
class MetricsRegistry;
class ThreadPool;
}  // namespace sage::util

namespace sage::sim {

class FaultInjector;

/// Where a registered buffer physically lives. Host buffers are reached
/// through the PCIe link model (out-of-core scenario, Section 3.3).
enum class MemSpace {
  kDevice,
  kHost,
};

/// Handle to a registered linear buffer in the simulated address space.
struct Buffer {
  uint32_t id = 0;
  uint64_t base = 0;
  uint32_t elem_bytes = 4;
  uint64_t num_elems = 0;
  MemSpace space = MemSpace::kDevice;
  /// Registration name ("csr.v", "bfs.dist", ...), kept for diagnostics —
  /// SageCheck violation reports name the offending buffer with it.
  std::string name;

  /// Simulated byte address of element i.
  uint64_t Addr(uint64_t i) const { return base + i * elem_bytes; }
};

/// Result of charging one batch of addresses to the memory system.
struct AccessResult {
  uint32_t sectors = 0;      ///< distinct sectors touched
  uint32_t l2_hits = 0;      ///< of which serviced from L2
  uint32_t l2_misses = 0;    ///< of which went to DRAM (or host link)
  uint32_t useful_bytes = 0; ///< bytes the lanes actually consumed
};

/// L2 outcome of one replayed batch (ProbeBatches).
struct BatchProbe {
  uint32_t l2_hits = 0;
  uint32_t l2_misses = 0;
};

/// Cumulative counters for one memory space.
struct MemStats {
  uint64_t batches = 0;
  uint64_t sectors = 0;
  uint64_t l2_hits = 0;
  uint64_t l2_misses = 0;
  uint64_t useful_bytes = 0;
  uint64_t loaded_bytes = 0;

  /// Memory access amplification (Section 3.2): loaded / useful. 1.0 is
  /// perfect coalescing; 8.0 means 4-byte values scattered one per sector.
  double Amplification() const {
    return useful_bytes == 0
               ? 0.0
               : static_cast<double>(loaded_bytes) /
                     static_cast<double>(useful_bytes);
  }
  double L2HitRate() const {
    uint64_t total = l2_hits + l2_misses;
    return total == 0 ? 0.0 : static_cast<double>(l2_hits) /
                                  static_cast<double>(total);
  }
};

/// Sector-granular memory system model: a linear simulated address space
/// plus a sectored, set-associative, LRU L2. This is where the paper's
/// central quantity — "count(distinct(floor(neighbors / sector_wide)))",
/// Section 6 — is measured for every tile access.
class MemorySim {
 public:
  explicit MemorySim(const DeviceSpec& spec);

  /// Registers a buffer of num_elems elements of elem_bytes each; the base
  /// address is cacheline-aligned and buffers never overlap.
  Buffer Register(const std::string& name, uint64_t num_elems,
                  uint32_t elem_bytes, MemSpace space = MemSpace::kDevice);

  /// Grows a registered buffer to at least new_num_elems (no-op if already
  /// that large), reallocating it at a fresh base address while keeping its
  /// id — so SageCheck shadow state survives, like a realloc that copies.
  /// Used for per-iteration work arrays whose worst case (duplicate-heavy
  /// frontiers) exceeds any reasonable static capacity.
  void Grow(Buffer* buffer, uint64_t new_num_elems);

  /// The current registration of buffer `id`, or nullptr for an id this
  /// memory system never issued. Register and Grow keep this authoritative,
  /// so SageVet can detect footprints holding a never-registered Buffer or a
  /// stale copy whose base/size predate a Grow. The pointer is invalidated
  /// by the next Register call.
  const Buffer* FindBuffer(uint32_t id) const;

  /// Charges a batch of element addresses (one per lane of a tile access).
  /// Deduplicates to distinct sectors and probes the L2 once per sector.
  /// Host-space addresses bypass the L2 (they are charged to the PCIe
  /// model by the caller) and are reported entirely as misses.
  AccessResult Access(const Buffer& buffer,
                      std::span<const uint64_t> elem_indices);
  AccessResult Access(const Buffer& buffer,
                      const std::vector<uint64_t>& elem_indices) {
    return Access(buffer, std::span<const uint64_t>(elem_indices));
  }

  /// Convenience for a single contiguous range [first, first+count) of a
  /// buffer (fully coalesced access).
  AccessResult AccessRange(const Buffer& buffer, uint64_t first,
                           uint64_t count);

  /// Collects the sorted distinct sector ids a batch touches into *out
  /// (replacing its contents). Pure address arithmetic: charges nothing and
  /// touches no shared state, so trace recorders may call it from any
  /// thread. Debug builds bounds-check the element indices.
  void CollectSectors(const Buffer& buffer,
                      std::span<const uint64_t> elem_indices,
                      std::vector<uint64_t>* out) const;
  void CollectSectorRange(const Buffer& buffer, uint64_t first,
                          uint64_t count, std::vector<uint64_t>* out) const;

  /// Charges one pre-collected sorted distinct sector batch: probes the L2
  /// (device space) or counts pure misses (host space) and updates stats.
  /// The single charging path both immediate execution and trace replay go
  /// through — Access/AccessRange are sector collection + this.
  AccessResult AccessSectors(MemSpace space,
                             std::span<const uint64_t> sectors,
                             uint64_t useful_bytes);

  /// Stats-only variant of AccessSectors for replayed device batches whose
  /// L2 outcome was already decided by ProbeBatches.
  AccessResult ApplySectorStats(MemSpace space, uint32_t num_sectors,
                                uint32_t l2_hits, uint32_t l2_misses,
                                uint64_t useful_bytes);

  /// Replay: drives an ordered sequence of sorted-sector device batches
  /// through the L2 and reports each batch's hit/miss split, exactly as if
  /// AccessSectors had been called batch by batch (stats are NOT updated —
  /// the caller applies them in order via ApplySectorStats). The L2 is
  /// treated as address-hashed slices (slice = set index mod slice count):
  /// the batches are pre-sharded into one compact canonical-order work list
  /// per slice, then each slice is probed by one worker of `pool` (nullptr
  /// = serial). Sets never straddle slices and LRU stamps are only ever
  /// compared within one set, so the outcome is bit-identical for every
  /// slice/worker count — see DESIGN.md §5 for the argument. All scratch
  /// lives in a persistent workspace, so steady-state replays allocate
  /// nothing after warmup.
  void ProbeBatches(std::span<const std::span<const uint64_t>> batches,
                    util::ThreadPool* pool, std::vector<BatchProbe>* out);

  /// Wall-clock microseconds each replay slice spent probing (SageScope
  /// `sim.replay.slice_us`). Host-measurement only — never part of modeled
  /// results or digests.
  const util::Histogram& replay_slice_us() const { return replay_slice_us_; }

  /// Distinct sectors spanned by a set of element indices, without charging
  /// the cache (used by the reorder sampler's hypothetical evaluations).
  uint32_t CountDistinctSectors(const Buffer& buffer,
                                const std::vector<uint64_t>& elem_indices) const;

  /// Invalidates the entire L2 (between kernels of unrelated apps).
  void FlushL2();

  const MemStats& device_stats() const { return device_stats_; }
  const MemStats& host_stats() const { return host_stats_; }
  void ResetStats();

  /// Publishes the cumulative device/host MemStats into `registry` under
  /// `prefix` (e.g. "mem." → "mem.device.sectors"). Publish-style (Counter::
  /// Set), so repeated exports overwrite rather than double-count. Values
  /// are modeled totals — deterministic across serial/parallel runs.
  void ExportMetrics(const std::string& prefix,
                     util::MetricsRegistry* registry) const;

  const DeviceSpec& spec() const { return spec_; }

  /// Fault-injection hook for Grow (SageGuard). Set via
  /// GpuDevice::set_fault_injector; nullptr when fault-free.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

 private:
  struct L2Set {
    std::vector<uint64_t> tags;    // sector tags, one per way (0 = empty)
    std::vector<uint64_t> stamps;  // LRU stamps
  };

  /// Probes (and fills) one set for a sector tag with an explicit LRU
  /// clock; returns true on hit. The slice-local replay clocks and the
  /// global immediate-mode clock share this body.
  bool ProbeSet(L2Set& set, uint64_t tag, uint64_t* clock);

  /// Probes (and fills) the L2 for a sector tag; returns true on hit.
  bool ProbeL2(uint64_t sector);

  /// Reusable ProbeBatches scratch: sized on first use, retained across
  /// replays (the workspace-arena discipline of DESIGN.md §5). All arrays
  /// are addressed by "flat index" — a batch's offset plus the lane within
  /// it — which gives every recorded sector a stable canonical position.
  struct ReplayWorkspace {
    std::vector<size_t> offsets;      ///< per-batch start in flat order
    std::vector<uint64_t> sectors;    ///< flattened sector ids
    std::vector<uint8_t> slice_of;    ///< owning slice per flat index
    std::vector<uint8_t> hit;         ///< per-flat-index L2 outcome
    std::vector<uint32_t> shard_flat; ///< flat indices grouped by slice
    std::vector<size_t> shard_begin;  ///< per-slice [begin, end) bounds
    std::vector<size_t> shard_fill;   ///< counting-sort fill cursors
    std::vector<uint64_t> slice_clock;
    std::vector<uint64_t> slice_us;   ///< wall time per slice (host metric)
  };

  DeviceSpec spec_;
  uint64_t next_base_ = 0;
  uint32_t next_id_ = 1;
  /// Authoritative copy of every registration, indexed by id - 1.
  std::vector<Buffer> registered_;
  std::vector<L2Set> sets_;
  uint64_t lru_clock_ = 0;
  MemStats device_stats_;
  MemStats host_stats_;
  mutable std::vector<uint64_t> scratch_sectors_;
  ReplayWorkspace replay_ws_;
  util::Histogram replay_slice_us_;
  /// log2(sector_bytes) when it is a power of two, else -1 (selects the
  /// shift fast path in CollectSectors).
  int sector_shift_ = -1;
  FaultInjector* injector_ = nullptr;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_MEMORY_SIM_H_
