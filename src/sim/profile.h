#ifndef SAGE_SIM_PROFILE_H_
#define SAGE_SIM_PROFILE_H_

#include <string>

#include "sim/gpu_device.h"

namespace sage::sim {

/// Renders a human-readable profile of everything a device executed —
/// kernel counts and time distribution, memory-system behaviour (sectors,
/// hit rate, access amplification) and host-link accounting. The
/// simulator's stand-in for an Nsight Compute summary (Section 7.1 uses
/// Nsight as the profiling tool).
std::string FormatDeviceProfile(const GpuDevice& device);

}  // namespace sage::sim

#endif  // SAGE_SIM_PROFILE_H_
