#ifndef SAGE_SIM_PROFILE_H_
#define SAGE_SIM_PROFILE_H_

#include <string>

#include "sim/gpu_device.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace sage::sim {

/// Renders a human-readable profile of everything a device executed —
/// kernel counts and time distribution, memory-system behaviour (sectors,
/// hit rate, access amplification) and host-link accounting. The
/// simulator's stand-in for an Nsight Compute summary (Section 7.1 uses
/// Nsight as the profiling tool).
std::string FormatDeviceProfile(const GpuDevice& device);

/// Structured-JSON twin of FormatDeviceProfile (SageScope): the same
/// quantities as a machine-readable object. Deterministic — every field is
/// a modeled total, so serial and --host-threads=N runs render identical
/// bytes.
std::string FormatDeviceProfileJson(const GpuDevice& device);

/// Publishes the device's totals (kernels, modeled seconds, TP overhead)
/// and its memory/link stats into `registry` under "device." / "mem." /
/// "link." names. Publish-style (Set): repeated exports overwrite.
void ExportDeviceMetrics(const GpuDevice& device,
                         util::MetricsRegistry* registry);

/// Appends the device's modeled kernel timeline (DeviceTotals::
/// kernel_records, requires set_timeline_enabled(true)) to `trace` as
/// Chrome-trace complete events on track `pid`, plus a process_name
/// metadata event labelling the track. Timestamps are modeled microseconds.
void AppendKernelTrace(const GpuDevice& device, const std::string& track_name,
                       uint32_t pid, util::TraceLog* trace);

}  // namespace sage::sim

#endif  // SAGE_SIM_PROFILE_H_
