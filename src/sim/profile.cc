#include "sim/profile.h"

#include <algorithm>

#include "util/stats.h"
#include "util/strings.h"

namespace sage::sim {

using util::AppendF;

std::string FormatDeviceProfile(const GpuDevice& device) {
  std::string out;
  const DeviceTotals& totals = device.totals();
  AppendF(&out, "=== device profile ===\n");
  AppendF(&out, "kernels launched : %llu\n",
          static_cast<unsigned long long>(totals.kernels));
  AppendF(&out, "total GPU time   : %.3f ms\n", totals.seconds * 1e3);
  AppendF(&out, "TP scheduling    : %.3f ms (%.1f%%)\n",
          totals.tp_overhead_seconds * 1e3,
          totals.seconds > 0
              ? 100.0 * totals.tp_overhead_seconds / totals.seconds
              : 0.0);
  if (!totals.per_kernel_seconds.empty()) {
    auto sorted = totals.per_kernel_seconds;
    std::sort(sorted.begin(), sorted.end());
    AppendF(&out, "kernel time      : p50 %.1fus  p90 %.1fus  max %.1fus\n",
            util::PercentileOfSorted(sorted, 50.0) * 1e6,
            util::PercentileOfSorted(sorted, 90.0) * 1e6,
            util::PercentileOfSorted(sorted, 100.0) * 1e6);
  }

  const MemStats& mem = device.mem().device_stats();
  AppendF(&out, "--- device memory ---\n");
  AppendF(&out, "batches          : %llu\n",
          static_cast<unsigned long long>(mem.batches));
  AppendF(&out, "sectors touched  : %llu (%.1f MB loaded)\n",
          static_cast<unsigned long long>(mem.sectors),
          static_cast<double>(mem.loaded_bytes) / 1e6);
  AppendF(&out, "L2 hit rate      : %.1f%%\n", 100.0 * mem.L2HitRate());
  AppendF(&out, "amplification    : %.2fx (useful %.1f MB)\n",
          mem.Amplification(),
          static_cast<double>(mem.useful_bytes) / 1e6);

  const LinkModel::Stats& link = device.host_link().stats();
  if (link.transfers > 0) {
    AppendF(&out, "--- host link (PCIe) ---\n");
    AppendF(&out, "transfers        : %llu (%llu frames)\n",
            static_cast<unsigned long long>(link.transfers),
            static_cast<unsigned long long>(link.frames));
    AppendF(&out, "wire traffic     : %.1f MB, payload ratio %.2f\n",
            static_cast<double>(link.wire_bytes) / 1e6, link.Efficiency());
  }
  return out;
}

std::string FormatDeviceProfileJson(const GpuDevice& device) {
  std::string out;
  const DeviceTotals& totals = device.totals();
  out += "{\n";
  AppendF(&out, "  \"kernels\": %llu,\n",
          static_cast<unsigned long long>(totals.kernels));
  AppendF(&out, "  \"gpu_seconds\": %.17g,\n", totals.seconds);
  AppendF(&out, "  \"tp_scheduling_seconds\": %.17g,\n",
          totals.tp_overhead_seconds);
  AppendF(&out, "  \"tp_scheduling_pct\": %.17g,\n",
          totals.seconds > 0
              ? 100.0 * totals.tp_overhead_seconds / totals.seconds
              : 0.0);
  if (!totals.per_kernel_seconds.empty()) {
    auto sorted = totals.per_kernel_seconds;
    std::sort(sorted.begin(), sorted.end());
    AppendF(&out,
            "  \"kernel_seconds\": {\"p50_us\": %.17g, \"p90_us\": %.17g, "
            "\"max_us\": %.17g},\n",
            util::PercentileOfSorted(sorted, 50.0) * 1e6,
            util::PercentileOfSorted(sorted, 90.0) * 1e6,
            util::PercentileOfSorted(sorted, 100.0) * 1e6);
  }

  const MemStats& mem = device.mem().device_stats();
  out += "  \"device_memory\": {\n";
  AppendF(&out, "    \"batches\": %llu,\n",
          static_cast<unsigned long long>(mem.batches));
  AppendF(&out, "    \"sectors\": %llu,\n",
          static_cast<unsigned long long>(mem.sectors));
  AppendF(&out, "    \"loaded_bytes\": %llu,\n",
          static_cast<unsigned long long>(mem.loaded_bytes));
  AppendF(&out, "    \"useful_bytes\": %llu,\n",
          static_cast<unsigned long long>(mem.useful_bytes));
  AppendF(&out, "    \"l2_hit_rate\": %.17g,\n", mem.L2HitRate());
  AppendF(&out, "    \"amplification\": %.17g\n", mem.Amplification());
  out += "  },\n";

  const LinkModel::Stats& link = device.host_link().stats();
  out += "  \"host_link\": {\n";
  AppendF(&out, "    \"transfers\": %llu,\n",
          static_cast<unsigned long long>(link.transfers));
  AppendF(&out, "    \"frames\": %llu,\n",
          static_cast<unsigned long long>(link.frames));
  AppendF(&out, "    \"wire_bytes\": %llu,\n",
          static_cast<unsigned long long>(link.wire_bytes));
  AppendF(&out, "    \"payload_ratio\": %.17g\n", link.Efficiency());
  out += "  }\n";
  out += "}\n";
  return out;
}

void ExportDeviceMetrics(const GpuDevice& device,
                         util::MetricsRegistry* registry) {
  const DeviceTotals& totals = device.totals();
  registry->counter("device.kernels")->Set(totals.kernels);
  registry->gauge("device.gpu_seconds")->Set(totals.seconds);
  registry->gauge("device.tp_scheduling_seconds")
      ->Set(totals.tp_overhead_seconds);
  device.mem().ExportMetrics("mem.", registry);
  const LinkModel::Stats& link = device.host_link().stats();
  registry->counter("link.transfers")->Set(link.transfers);
  registry->counter("link.frames")->Set(link.frames);
  registry->counter("link.wire_bytes")->Set(link.wire_bytes);
  registry->gauge("link.payload_ratio")->Set(link.Efficiency());
  // SageCache (DESIGN.md §12): only exported when the host-tile cache is
  // configured, so in-core exports are byte-for-byte what they always were.
  if (device.tile_cache().enabled()) {
    const HostTileCache::Stats& cache = device.tile_cache().stats();
    registry->counter("cache.hits")->Set(cache.hits);
    registry->counter("cache.misses")->Set(cache.misses);
    registry->counter("cache.evictions")->Set(cache.evictions);
    registry->counter("cache.prefill_bytes")->Set(cache.prefill_bytes);
    registry->gauge("cache.hit_rate")->Set(cache.HitRate());
  }
  // Kernel-duration histogram in modeled microseconds: rebuilt from the
  // per-kernel record on every export so repeated exports stay exact.
  util::HistogramMetric* h = registry->histogram("device.kernel_us");
  h->Reset();
  for (double s : totals.per_kernel_seconds) {
    h->Add(static_cast<uint64_t>(s * 1e6));
  }
}

void AppendKernelTrace(const GpuDevice& device, const std::string& track_name,
                       uint32_t pid, util::TraceLog* trace) {
  trace->Add(util::ProcessNameEvent(pid, track_name));
  for (const KernelRecord& rec : device.totals().kernel_records) {
    util::TraceEvent e;
    e.name = rec.label.empty() ? "kernel" : rec.label;
    e.cat = "kernel";
    e.ph = 'X';
    e.ts_us = rec.start_seconds * 1e6;
    e.dur_us = rec.seconds * 1e6;
    e.pid = pid;
    e.tid = 0;
    e.ArgU64("seq", rec.seq)
        .ArgU64("sectors", rec.sectors)
        .ArgU64("compute_cycles", rec.compute_cycles)
        .ArgU64("tp_overhead_cycles", rec.tp_overhead_cycles);
    trace->Add(std::move(e));
  }
}

}  // namespace sage::sim
