#include "sim/profile.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace sage::sim {

namespace {

void Appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void Appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

std::string FormatDeviceProfile(const GpuDevice& device) {
  std::string out;
  const DeviceTotals& totals = device.totals();
  Appendf(out, "=== device profile ===\n");
  Appendf(out, "kernels launched : %llu\n",
          static_cast<unsigned long long>(totals.kernels));
  Appendf(out, "total GPU time   : %.3f ms\n", totals.seconds * 1e3);
  Appendf(out, "TP scheduling    : %.3f ms (%.1f%%)\n",
          totals.tp_overhead_seconds * 1e3,
          totals.seconds > 0
              ? 100.0 * totals.tp_overhead_seconds / totals.seconds
              : 0.0);
  if (!totals.per_kernel_seconds.empty()) {
    auto sorted = totals.per_kernel_seconds;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&sorted](double p) {
      size_t i = static_cast<size_t>(p * (sorted.size() - 1));
      return sorted[i] * 1e6;
    };
    Appendf(out, "kernel time      : p50 %.1fus  p90 %.1fus  max %.1fus\n",
            pct(0.5), pct(0.9), pct(1.0));
  }

  const MemStats& mem = device.mem().device_stats();
  Appendf(out, "--- device memory ---\n");
  Appendf(out, "batches          : %llu\n",
          static_cast<unsigned long long>(mem.batches));
  Appendf(out, "sectors touched  : %llu (%.1f MB loaded)\n",
          static_cast<unsigned long long>(mem.sectors),
          static_cast<double>(mem.loaded_bytes) / 1e6);
  Appendf(out, "L2 hit rate      : %.1f%%\n", 100.0 * mem.L2HitRate());
  Appendf(out, "amplification    : %.2fx (useful %.1f MB)\n",
          mem.Amplification(),
          static_cast<double>(mem.useful_bytes) / 1e6);

  const LinkModel::Stats& link = device.host_link().stats();
  if (link.transfers > 0) {
    Appendf(out, "--- host link (PCIe) ---\n");
    Appendf(out, "transfers        : %llu (%llu frames)\n",
            static_cast<unsigned long long>(link.transfers),
            static_cast<unsigned long long>(link.frames));
    Appendf(out, "wire traffic     : %.1f MB, payload ratio %.2f\n",
            static_cast<double>(link.wire_bytes) / 1e6, link.Efficiency());
  }
  return out;
}

}  // namespace sage::sim
