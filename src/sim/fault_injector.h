#ifndef SAGE_SIM_FAULT_INJECTOR_H_
#define SAGE_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace sage::sim {

/// The injectable fault classes (DESIGN.md §7). Each maps to a concrete
/// hook point in the simulator or engine main loop — all of them on the
/// main thread in both serial and `--host-threads=N` modes, which is what
/// makes fault schedules bit-reproducible under the trace/replay backend.
enum class FaultKind {
  /// The current kernel "fails" transiently (Xid-style). Decided at
  /// BeginKernel; surfaced by the engine at the iteration boundary as
  /// kUnavailable. Retryable.
  kTransientKernel,
  /// MemorySim::Grow reports a device-buffer OOM. The grow itself still
  /// happens (the simulation stays internally consistent); the engine
  /// surfaces the fault at the iteration boundary. Retryable.
  kDeviceOom,
  /// ECC-style corruption: one bit of the engine's frontier flips at an
  /// iteration boundary. Detected rules also raise an uncorrectable-ECC
  /// fault (retryable via checkpoint restore); `silent` rules flip the bit
  /// without telling anyone — output digests are how those get caught.
  kSectorCorruption,
  /// One byte of a serialized checkpoint payload flips as it is written.
  /// Caught by the checkpoint's own digest at Resume time (kCorruption),
  /// which falls back to a from-scratch rerun.
  kCheckpointCorruption,
  /// A straggler SM: its modeled per-kernel time is multiplied. Purely a
  /// timing fault — outputs are unaffected, deadlines are what break.
  kStragglerSm,
  /// A poisoned traversal source: any run whose sources include this
  /// original node id fails permanently (kInternal, not retryable). The
  /// serve layer's batch bisection exists to isolate exactly this.
  kPoisonedSource,
};

const char* FaultKindName(FaultKind kind);

/// One fault rule: either probabilistic (`rate` per opportunity, drawn
/// statelessly from the spec seed and a monotonic opportunity counter so
/// serial and parallel replays agree) or pinned to an exact coordinate
/// (kernel sequence number, engine iteration, or grow-call index). Exact
/// rules fire at most once per injector so a retry that re-executes the
/// same coordinate can make progress.
struct FaultRule {
  FaultKind kind = FaultKind::kTransientKernel;
  double rate = 0.0;       ///< per-opportunity probability (0 = coordinate)
  int64_t kernel = -1;     ///< exact device kernel_seq (1-based), -1 = any
  int64_t iteration = -1;  ///< exact engine iteration (0-based), -1 = any
  int64_t grow_index = -1; ///< exact Grow call index (1-based), -1 = any
  uint32_t sm = 0;         ///< straggler target SM
  double multiplier = 1.0; ///< straggler latency multiplier
  uint64_t node = 0;       ///< poisoned original source id
  bool silent = false;     ///< corruption without a raised fault
  bool fired = false;      ///< exact-coordinate rules fire once
  int64_t max_fires = -1;  ///< `count N`: rule exhausts after N firings
  int64_t fires = 0;       ///< firings so far (against max_fires)
};

/// A parsed fault scenario: a seed plus a rule list.
struct FaultSpec {
  uint64_t seed = 0x5a9ef417u;
  std::vector<FaultRule> rules;
  bool empty() const { return rules.empty(); }
};

/// Parses the `sage_cli faults` spec format, one rule per line, `#`
/// comments:
///
///   seed 42
///   transient rate 0.01          # 1% of kernels fail transiently
///   transient rate 1.0 count 6   # every kernel fails — but only 6 times
///   transient kernel 7           # kernel_seq 7 fails, exactly once
///   oom grow 2                   # second Grow call reports OOM
///   corrupt iter 3               # detected ECC flip in the iter-3 frontier
///   corrupt iter 3 silent        # same flip, nobody told (digests catch it)
///   corrupt-checkpoint iter 2    # checkpoint payload byte flip at iter 2
///   straggler sm 3 x 8.0         # SM 3 is 8x slow in every kernel
///   straggler sm 1 x 4.0 kernel 5
///   poison node 17               # any run sourced at node 17 fails hard
util::StatusOr<FaultSpec> ParseFaultSpec(const std::string& text);

/// One fired fault, in firing order. The trace is the determinism witness:
/// tests assert the serial and `--host-threads=N` traces are byte-identical.
struct FaultEvent {
  FaultKind kind = FaultKind::kTransientKernel;
  uint64_t kernel_seq = 0;  ///< device kernel at/near the fault (0 = n/a)
  int64_t iteration = -1;   ///< engine iteration (-1 = n/a)
  uint32_t sm = 0;
  std::string detail;

  std::string ToString() const;
};

/// Deterministic seed-driven fault injector. One injector per GpuDevice;
/// every hook runs on the thread that owns the device (the engine main
/// thread), so no synchronization and no schedule dependence. Probabilistic
/// draws use SplitMix64 over (seed, per-class monotonic counter) — the
/// counters never reset, so a retry of the same work draws fresh randomness
/// and rate-injected faults do not recur forever.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  // --- simulator hooks (GpuDevice / MemorySim, main thread) ---

  /// Called by GpuDevice::BeginKernel with the new kernel_seq. Decides this
  /// kernel's transient failure and straggler multipliers.
  void OnBeginKernel(uint64_t kernel_seq);

  /// This kernel's latency multiplier for `sm` (1.0 when healthy). Folded
  /// into the cost model by GpuDevice::EndKernel.
  double SmLatencyMultiplier(uint32_t sm) const;

  /// Called by MemorySim::Grow before the grow is performed. May record a
  /// pending OOM fault; the grow always proceeds.
  void OnGrow(const std::string& buffer_name, uint64_t new_num_elems);

  // --- engine hooks (iteration boundaries, main thread) ---

  /// Tells the injector which engine iteration is running, for event
  /// attribution and iteration-coordinate rules.
  void SetIteration(int64_t iter) { cur_iteration_ = iter; }

  /// Returns and clears the pending fault raised since the last call (OK if
  /// none). The engine calls this once per iteration boundary and converts
  /// it into a Run failure carrying the fault site.
  util::Status TakePendingFault();

  /// Maybe flips one bit of `frontier` per the corruption rules; returns
  /// true if a flip happened. Non-silent rules also raise a pending fault.
  /// Flipped values are folded into [0, limit) — frontier entries are node
  /// ids and an out-of-range id would crash the simulation rather than
  /// model silent data corruption.
  bool MaybeCorruptFrontier(int64_t iter, std::span<uint32_t> frontier,
                            uint32_t limit);

  /// Maybe flips one byte of a serialized checkpoint payload.
  bool MaybeCorruptCheckpoint(int64_t iter, std::span<uint8_t> payload);

  // --- app/serve hooks ---

  /// True if `orig_node` is a poisoned source: runs including it must fail
  /// permanently. Pure — callable from anywhere.
  bool PoisonedSource(uint64_t orig_node) const;

  // --- trace ---

  const std::vector<FaultEvent>& events() const { return events_; }
  std::string TraceString() const;
  void ClearEvents() { events_.clear(); }

  const FaultSpec& spec() const { return spec_; }

  /// Site of the most recently raised pending fault, for error messages.
  uint64_t last_fault_kernel() const { return last_fault_kernel_; }
  int64_t last_fault_iteration() const { return last_fault_iteration_; }

 private:
  /// Stateless per-opportunity Bernoulli draw: SplitMix64 over the spec
  /// seed, a per-class salt, and a monotonic counter.
  bool Draw(uint64_t salt, uint64_t counter, double rate) const;

  void RaisePending(util::Status status);
  void Record(FaultKind kind, uint32_t sm, std::string detail);

  FaultSpec spec_;
  std::vector<FaultEvent> events_;
  util::Status pending_ = util::Status::OK();
  uint64_t cur_kernel_ = 0;
  int64_t cur_iteration_ = -1;
  uint64_t grow_seq_ = 0;
  uint64_t corrupt_seq_ = 0;
  uint64_t ckpt_seq_ = 0;
  uint64_t last_fault_kernel_ = 0;
  int64_t last_fault_iteration_ = -1;
  /// Straggler multipliers decided for the current kernel, one per rule
  /// that applies (empty when all SMs are healthy this kernel).
  struct ActiveStraggler {
    uint32_t sm;
    double multiplier;
  };
  std::vector<ActiveStraggler> active_stragglers_;
  std::vector<bool> straggler_logged_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_FAULT_INJECTOR_H_
