#ifndef SAGE_SIM_KERNEL_STATS_H_
#define SAGE_SIM_KERNEL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sage::sim {

/// Per-SM counters accumulated while a kernel executes.
struct SmCounters {
  /// Issued instruction cycles (includes tp_overhead_cycles).
  uint64_t compute_cycles = 0;
  /// The subset of compute spent on runtime scheduling: leader elections,
  /// votes, shuffles and tile partitioning. This is what Table 3 reports.
  uint64_t tp_overhead_cycles = 0;
  /// Sector bandwidth demand, split by where it was serviced.
  uint64_t hit_sectors = 0;
  uint64_t miss_sectors = 0;
  /// Dependent-access stalls (one per tile gather), by latency class.
  uint64_t l2_latency_events = 0;
  uint64_t dram_latency_events = 0;
  /// Serialized on-demand host-link service cycles and request count.
  double host_link_cycles = 0.0;
  uint64_t host_latency_events = 0;
  /// Warps' worth of work dispatched to this SM (occupancy proxy).
  uint64_t warps_launched = 0;
  /// Atomic RMW serialization events charged to this SM.
  uint64_t atomic_conflicts = 0;
};

/// Modeled result of one kernel launch.
struct KernelResult {
  double seconds = 0.0;
  double max_sm_cycles = 0.0;
  /// Busy cycles of the least- and most-loaded SM; their ratio is the
  /// inter-SM load-balance metric the ablation study reports.
  double min_sm_busy = 0.0;
  double max_sm_busy = 0.0;
  uint64_t total_compute_cycles = 0;
  uint64_t total_tp_overhead_cycles = 0;
  uint64_t total_sectors = 0;
};

/// One kernel's slice on the modeled timeline (SageScope). Collected only
/// while GpuDevice::set_timeline_enabled(true) is in effect, so the default
/// hot path records nothing. Times are modeled device seconds — not wall
/// clock — which makes the records bit-identical between serial and
/// parallel (trace/replay) execution.
struct KernelRecord {
  uint64_t seq = 0;           ///< device-wide kernel sequence number
  double start_seconds = 0.0; ///< cumulative modeled seconds at launch
  double seconds = 0.0;       ///< modeled duration
  uint64_t sectors = 0;
  uint64_t compute_cycles = 0;
  uint64_t tp_overhead_cycles = 0;
  std::string label;          ///< caller-set (program name); may be empty
};

/// Running totals across all kernels of an app execution.
struct DeviceTotals {
  double seconds = 0.0;
  uint64_t kernels = 0;
  double tp_overhead_seconds = 0.0;
  std::vector<double> per_kernel_seconds;
  /// Sectors serviced per SM across all kernels (hit + miss), indexed by SM
  /// id. The determinism harness hashes this to prove the parallel backend
  /// charges every SM identically to serial mode.
  std::vector<uint64_t> sm_sectors;
  /// Modeled kernel timeline; empty unless the device timeline is enabled.
  /// Consumers (trace export) may clear it after draining to bound memory.
  std::vector<KernelRecord> kernel_records;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_KERNEL_STATS_H_
