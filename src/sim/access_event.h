#ifndef SAGE_SIM_ACCESS_EVENT_H_
#define SAGE_SIM_ACCESS_EVENT_H_

#include <cstdint>
#include <span>
#include <string_view>

namespace sage::sim {

struct Buffer;

/// Declared semantics of one memory batch, used by correctness tooling
/// (SageCheck) to classify inter-SM conflicts the way compute-sanitizer's
/// racecheck would on real hardware. The cost model itself is intent-blind;
/// call sites default to kRead so existing code keeps compiling.
enum class AccessIntent : uint8_t {
  kRead = 0,
  /// Plain store. Concurrent same-element accesses from other SMs (reads,
  /// writes, or atomics) within one kernel phase are data races.
  kWrite = 1,
  /// Atomic RMW (atomicMin/Add/CAS...). Serializes against other atomics,
  /// and dirty reads of atomically-updated cells are device-coherent.
  kAtomic = 2,
  /// Plain store declared value-idempotent by the program: every writer
  /// that can race on the element stores the same value (BFS's dirty level
  /// writes, Section 7.2's "no atomics needed" class). Races only against
  /// non-idempotent plain stores and atomics.
  kWriteIdempotent = 3,
};

const char* AccessIntentName(AccessIntent intent);

/// How much checking the simulator's sanitizer layer performs.
enum class CheckLevel : uint8_t {
  kOff = 0,     ///< no event recording at all (zero hot-path overhead)
  kBounds = 1,  ///< out-of-bounds element indices + kernel bracketing
  kFull = 2,    ///< bounds + intra-kernel races + read-before-ever-written
};

const char* CheckLevelName(CheckLevel level);

/// Observer of every memory-system event a GpuDevice produces. Attached via
/// GpuDevice::set_access_sink; when no sink is attached the device skips all
/// event plumbing. SageCheck's AccessChecker is the canonical implementation
/// (src/check/access_checker.h).
class AccessEventSink {
 public:
  virtual ~AccessEventSink() = default;

  /// A kernel launch began / ended. `kernel_seq` counts launches.
  virtual void OnKernelBegin(uint64_t kernel_seq) = 0;
  virtual void OnKernelEnd(uint64_t kernel_seq) = 0;

  /// A device-wide execution phase boundary inside the current kernel
  /// (grid sync / queue publish with memory fence): accesses on opposite
  /// sides of a fence are ordered and cannot race.
  virtual void OnPhaseFence(uint64_t kernel_seq) = 0;

  /// One charged batch of element indices against `buffer` from SM `sm`.
  virtual void OnAccess(uint32_t sm, const Buffer& buffer,
                        std::span<const uint64_t> elem_indices,
                        AccessIntent intent) = 0;

  /// One charged contiguous batch [first, first + count).
  virtual void OnAccessRange(uint32_t sm, const Buffer& buffer, uint64_t first,
                             uint64_t count, AccessIntent intent) = 0;

  /// An *uncharged* functional write marking (host uploads, memsets, and
  /// store-metadata publishes the cost model does not meter). Participates
  /// in shadow-init and race bookkeeping but not in timing.
  virtual void OnBufferNote(const Buffer& buffer, uint64_t first,
                            uint64_t count, AccessIntent intent) = 0;

  /// A BeginKernel/EndKernel bracketing violation the device tolerated
  /// because a sink is attached (sanitizer mode): double Begin, End without
  /// Begin, or a charge outside any kernel.
  virtual void OnBracketingViolation(std::string_view what) = 0;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_ACCESS_EVENT_H_
