#include "sim/device_group.h"

#include "util/logging.h"

namespace sage::sim {

DeviceGroup::DeviceGroup(const DeviceSpec& spec, uint32_t count)
    : spec_(spec),
      link_(spec.PeerBytesPerCycle(), spec.peer_latency_cycles,
            spec.pcie_frame_header_bytes, spec.pcie_max_payload_bytes) {
  SAGE_CHECK_GE(count, 1u);
  devices_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    devices_.push_back(std::make_unique<GpuDevice>(spec_));
  }
}

LinkModel::Transfer DeviceGroup::Exchange(uint64_t payload_bytes) {
  if (payload_bytes == 0) return LinkModel::Transfer();
  return link_.BulkTransfer(payload_bytes);
}

}  // namespace sage::sim
