#ifndef SAGE_SIM_GPU_DEVICE_H_
#define SAGE_SIM_GPU_DEVICE_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/access_event.h"
#include "sim/device_spec.h"
#include "sim/kernel_stats.h"
#include "sim/link.h"
#include "sim/memory_sim.h"
#include "sim/tile_cache.h"

namespace sage::util {
class ThreadPool;
}  // namespace sage::util

namespace sage::sim {

class FaultInjector;
class KernelTraceRecorder;

/// One simulated GPU: a memory system, a host (PCIe) link, and per-SM
/// execution counters. Engines (SAGE and the baselines) express their work
/// as charges against SMs; EndKernel() folds the counters through the cost
/// model (DESIGN.md §3) into modeled seconds.
///
/// The cost model per SM:
///   service  = hit_sectors·c_hit + miss_sectors·c_dram + host_link_cycles
///   busy     = max(compute_cycles, service)          (issue/memory overlap)
///   exposed  = Σ latency_events·latency / (1 + h·(resident_warps − 1))
///   T_sm     = busy + exposed
///   T_kernel = max_sm T_sm + launch_overhead
///
/// `exposed` is how Resident Tile Stealing shows up: feeding every SM keeps
/// resident_warps high, which hides the long dependent-load latencies that
/// otherwise dominate memory-intensive traversal (Section 5.2).
class GpuDevice {
 public:
  explicit GpuDevice(const DeviceSpec& spec);

  GpuDevice(const GpuDevice&) = delete;
  GpuDevice& operator=(const GpuDevice&) = delete;

  const DeviceSpec& spec() const { return spec_; }
  MemorySim& mem() { return mem_; }
  const MemorySim& mem() const { return mem_; }
  LinkModel& host_link() { return host_link_; }
  const LinkModel& host_link() const { return host_link_; }

  /// SageCache: the device-resident host-tile cache (DESIGN.md §12).
  /// Disabled until configured (HostTileCache::Configure); while enabled it
  /// fronts every host-space sector charge — hits cost a device DRAM read,
  /// misses page the full aligned tile over the PCIe frame model. Driven
  /// only from the canonical host-charge order, so its state and stats are
  /// bit-identical across --host-threads values.
  HostTileCache& tile_cache() { return tile_cache_; }
  const HostTileCache& tile_cache() const { return tile_cache_; }

  /// Resets per-kernel counters; must bracket every kernel.
  void BeginKernel();

  /// Charges plain instruction cycles to an SM.
  void ChargeCompute(uint32_t sm, uint64_t cycles);

  /// Charges runtime-scheduling cycles (elections, votes, partitioning) —
  /// counted both as compute and as Tiled Partitioning overhead (Table 3).
  void ChargeTpOverhead(uint32_t sm, uint64_t cycles);

  /// Registers `count` warps' worth of work dispatched to an SM (occupancy).
  void ChargeWarps(uint32_t sm, uint64_t count = 1);

  /// Charges one dependent memory batch (a tile gather) to an SM. Device
  /// buffers go through the L2 model; host buffers go through the PCIe
  /// on-demand path with frame accounting. `intent` declares read/write/
  /// atomic semantics to the attached access sink (the cost model itself is
  /// intent-blind). With a sink attached, out-of-bounds lanes are reported
  /// and suppressed before charging (sanitizer semantics).
  AccessResult Access(uint32_t sm, const Buffer& buffer,
                      std::span<const uint64_t> elem_indices,
                      AccessIntent intent = AccessIntent::kRead);
  AccessResult Access(uint32_t sm, const Buffer& buffer,
                      const std::vector<uint64_t>& elem_indices,
                      AccessIntent intent = AccessIntent::kRead) {
    return Access(sm, buffer, std::span<const uint64_t>(elem_indices), intent);
  }

  /// Contiguous batch [first, first+count).
  AccessResult AccessRange(uint32_t sm, const Buffer& buffer, uint64_t first,
                           uint64_t count,
                           AccessIntent intent = AccessIntent::kRead);

  /// Records an *uncharged* functional write of [first, first+count) for
  /// correctness tooling: host uploads, memsets at setup, and metadata
  /// publishes the cost model deliberately does not meter. No-op without a
  /// sink.
  void NoteBufferWrite(const Buffer& buffer, uint64_t first, uint64_t count,
                       AccessIntent intent = AccessIntent::kWrite);

  /// Marks a device-wide execution phase boundary inside the current kernel
  /// (cooperative grid sync / queue publish + threadfence). Accesses on
  /// opposite sides are ordered: the race checker will not pair them.
  void FenceKernelPhase();

  /// Attaches / detaches the access-event sink (SageCheck). At most one
  /// sink; pass nullptr to detach. With no sink the hot path records
  /// nothing.
  void set_access_sink(AccessEventSink* sink) { sink_ = sink; }
  AccessEventSink* access_sink() const { return sink_; }

  /// Attaches / detaches the deterministic fault injector (SageGuard). At
  /// most one; pass nullptr to detach. Hooks fire on the main thread only
  /// (BeginKernel / EndKernel / Grow), so fault schedules are identical in
  /// serial and trace/replay-parallel modes. Also plumbed into mem().
  void set_fault_injector(FaultInjector* injector);
  FaultInjector* fault_injector() const { return injector_; }

  /// Installs a permutation of [0, num_sms) that remaps static block
  /// placement and the LeastLoadedSm scan order. Used by the determinism
  /// harness to prove results are independent of SM placement. Pass an
  /// empty vector to restore the identity.
  void SetSmPermutation(std::vector<uint32_t> perm);

  /// Charges `n` intra-tile atomic conflicts (serialized RMWs).
  void ChargeAtomicConflicts(uint32_t sm, uint64_t n);

  /// Charges a bulk streaming sweep of `bytes` (sort / permute / compaction
  /// kernels): pure DRAM bandwidth, no reuse (bypasses the L2 model), one
  /// exposed-latency event. O(1) — use for whole-array kernels where
  /// element-wise simulation would add nothing.
  void ChargeStreamingBytes(uint32_t sm, uint64_t bytes);

  /// Charges an asynchronous bulk host transfer overlapping the kernel
  /// (Subway-style preloading). Returns the transfer's cycles; the caller
  /// decides how much of it overlaps compute.
  LinkModel::Transfer BulkHostTransfer(uint64_t payload_bytes);

  /// Ends the kernel and returns its modeled result; accumulates totals.
  KernelResult EndKernel();

  /// SM with the smallest accumulated busy proxy — the simulator's model of
  /// a global work queue pop (work stealing assigns the next unit here).
  /// Outcome-dependent (reads live counters), so it is only legal in
  /// immediate mode; the engine's deterministic scheduler (ArgMinSm over
  /// its own load estimates) replaces it on the traversal hot path.
  uint32_t LeastLoadedSm() const;

  /// Index of the smallest element of `loads`, scanning in installed-SM-
  /// permutation order with strict < (the same tie-break LeastLoadedSm
  /// uses). `loads.size()` must equal num_sms. Pure — safe pre-dispatch.
  uint32_t ArgMinSm(std::span<const double> loads) const;

  /// Busy-cycle estimate of one SM in the current kernel (compute + memory
  /// service so far). The engine seeds its deterministic scheduler's load
  /// vector from this at phase boundaries.
  double SmBusyProxy(uint32_t sm) const;

  /// Binds `rec` as the calling thread's trace recorder (nullptr unbinds).
  /// While a recorder whose device() is this GpuDevice is bound, Charge*/
  /// Access calls on this thread record into it instead of touching device
  /// state — the parallel backend's trace phase (DESIGN.md §5).
  static void BindThreadRecorder(KernelTraceRecorder* rec);

  /// Replays recorded traces in canonical unit order: merges the workers'
  /// SM counter shards, probes all device batches through the sliced L2
  /// (parallel across slices of `pool`, nullptr = serial), then applies
  /// stats and SM/link charges serially in unit order — producing device
  /// state bit-identical to immediate-mode execution of the same units in
  /// rank order. The canonical order is reconstructed sort-free: each
  /// recorder's event stream is cut into per-unit runs (one worker records
  /// a unit's events contiguously) and the runs are placed into a
  /// rank-indexed table — O(events + units) instead of a stable sort.
  void ReplayTraces(std::span<KernelTraceRecorder* const> recorders,
                    util::ThreadPool* pool);

  /// Static round-robin block placement used by non-stealing engines.
  uint32_t StaticSmForBlock(uint64_t block_index) const {
    uint32_t slot = static_cast<uint32_t>(block_index % spec_.num_sms);
    return sm_perm_.empty() ? slot : sm_perm_[slot];
  }

  DeviceTotals& totals() { return totals_; }
  const DeviceTotals& totals() const { return totals_; }
  void ResetTotals();

  /// Enables per-kernel timeline records (DeviceTotals::kernel_records) for
  /// SageScope trace export. Off by default — the hot path then records
  /// nothing extra. Records carry modeled time only, so they are
  /// bit-identical between serial and --host-threads=N runs.
  void set_timeline_enabled(bool enabled) { timeline_enabled_ = enabled; }
  bool timeline_enabled() const { return timeline_enabled_; }

  /// Label stamped on subsequent kernels' timeline records (the engine sets
  /// the bound program's name). Ignored while the timeline is disabled.
  void set_kernel_label(std::string label) { kernel_label_ = std::move(label); }

  /// Adds host-side pipeline seconds that are not kernel time (e.g. the
  /// synchronous part of an out-of-core transfer) to the running totals.
  void AddExternalSeconds(double seconds);

  double CyclesToSeconds(double cycles) const {
    return cycles / (spec_.clock_ghz * 1e9);
  }

 private:
  /// The pre-sink charging body shared by Access and AccessRange.
  AccessResult AccessCharged(uint32_t sm, const Buffer& buffer,
                             std::span<const uint64_t> elem_indices);

  /// Charges one pre-collected sorted distinct sector batch to `sm`: the
  /// memory system (L2 probe or host-link frames) plus the SM's counters.
  /// The single charging path shared by immediate mode and trace replay.
  AccessResult ChargeSectorBatch(uint32_t sm, MemSpace space,
                                 std::span<const uint64_t> sectors,
                                 uint64_t useful_bytes);

  /// SM-counter part of a device-space charge (sector split + stall event).
  void ApplyDeviceCounters(uint32_t sm, const AccessResult& result);

  /// The thread's bound recorder if it belongs to this device.
  KernelTraceRecorder* BoundRecorder() const;

  /// One contiguous run of recorded events: events [begin, begin + count)
  /// of recorder `rec`, all belonging to one unit rank.
  struct ReplayRun {
    uint64_t unit = 0;
    uint32_t rec = 0;
    uint32_t begin = 0;
    uint32_t count = 0;
  };

  DeviceSpec spec_;
  MemorySim mem_;
  LinkModel host_link_;
  HostTileCache tile_cache_;
  std::vector<uint64_t> cache_fetch_scratch_;  ///< tile-expanded miss list
  std::vector<SmCounters> sms_;
  bool in_kernel_ = false;
  DeviceTotals totals_;
  std::vector<uint64_t> scratch_idx_;
  AccessEventSink* sink_ = nullptr;
  FaultInjector* injector_ = nullptr;
  std::vector<uint32_t> sm_perm_;
  /// ReplayTraces workspace, retained across phases so steady-state
  /// replays allocate nothing (DESIGN.md §5).
  std::vector<ReplayRun> replay_runs_;
  std::vector<ReplayRun> replay_units_;  ///< rank-indexed run table
  std::vector<std::span<const uint64_t>> replay_batches_;
  std::vector<BatchProbe> replay_probes_;
  uint64_t kernel_seq_ = 0;
  bool timeline_enabled_ = false;
  std::string kernel_label_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_GPU_DEVICE_H_
