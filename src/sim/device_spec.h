#ifndef SAGE_SIM_DEVICE_SPEC_H_
#define SAGE_SIM_DEVICE_SPEC_H_

#include <cstdint>

namespace sage::sim {

/// Parameters of the simulated GPU. Defaults approximate one NVIDIA Quadro
/// RTX 8000 (the paper's testbed; Section 7.1) at the granularity the cost
/// model needs. Every constant is a knob so benchmarks can run sensitivity
/// sweeps (see bench_ablation_extra).
///
/// The simulator is *functionally exact* (it executes the real algorithms)
/// and *cost-approximate*: time = modeled cycles / clock. See DESIGN.md §3.
struct DeviceSpec {
  // --- Compute geometry -------------------------------------------------
  /// Number of streaming multiprocessors (RTX 8000: 72).
  uint32_t num_sms = 72;
  /// SIMT width; the minimum scheduling granularity (Section 2.1).
  uint32_t warp_size = 32;
  /// Threads per block used by the graph kernels.
  uint32_t block_size = 256;
  /// Resident-warp capacity per SM; bounds latency hiding.
  uint32_t max_resident_warps = 32;

  // --- Memory geometry ---------------------------------------------------
  /// Physical memory sector: the unit the paper's locality objective counts
  /// (Section 6). NVIDIA DRAM sectors are 32 bytes.
  uint32_t sector_bytes = 32;
  /// L2 cache line (4 sectors on NVIDIA parts; "as large as 128 bytes",
  /// Section 3.2).
  uint32_t cacheline_bytes = 128;
  /// Device-level L2 capacity. Scaled down with the scaled datasets so the
  /// cache-pressure regime matches the paper's (graph >> L2).
  uint64_t l2_bytes = 2ull << 20;
  /// L2 associativity (sectored, LRU within a set).
  uint32_t l2_ways = 16;

  // --- Timing ------------------------------------------------------------
  /// SM clock in GHz (RTX 8000 boost ~1.77; we use a round base clock).
  double clock_ghz = 1.5;
  /// Sector service cost when it hits in L2 (bandwidth term).
  uint32_t l2_hit_sector_cycles = 2;
  /// Sector service cost on an L2 miss (DRAM bandwidth term).
  uint32_t dram_sector_cycles = 8;
  /// Exposed latency of a dependent L2 hit / DRAM access before hiding.
  uint32_t l2_latency_cycles = 120;
  uint32_t dram_latency_cycles = 400;
  /// Fraction of a stalled batch's latency hidden per resident warp.
  double latency_hide_per_warp = 0.35;
  /// Fixed cost of launching a kernel (driver + dispatch).
  uint32_t kernel_launch_cycles = 4000;
  /// Cooperative-group vote / shuffle / elect instruction cost.
  uint32_t cg_op_cycles = 2;
  /// Block-wide barrier cost (__syncthreads / cg sync).
  uint32_t sync_cycles = 24;
  /// Cost of one atomic RMW that conflicts with another lane in the same
  /// tile access (serialization penalty; Section 7.2's "atomicity" factor).
  uint32_t atomic_conflict_cycles = 12;

  // --- Host link (out-of-core; Section 3.3) -------------------------------
  /// Effective PCIe payload bandwidth in GB/s (PCIe 3.0 x16 ~ 12 GB/s).
  double pcie_gbps = 12.0;
  /// One-way request latency in SM cycles.
  uint32_t pcie_latency_cycles = 2000;
  /// Per-frame control-segment overhead (header) in bytes.
  uint32_t pcie_frame_header_bytes = 24;
  /// Maximum payload per frame (PCIe TLP max payload).
  uint32_t pcie_max_payload_bytes = 256;

  // --- Peer link (multi-GPU; Figure 9) ------------------------------------
  double peer_gbps = 40.0;
  uint32_t peer_latency_cycles = 900;

  /// Node-attribute values per sector (paper's example: 4-byte labels →
  /// 8 per 32-byte sector).
  uint32_t ValuesPerSector() const { return sector_bytes / 4; }

  /// Payload bytes transferred per cycle on the host link.
  double PcieBytesPerCycle() const { return pcie_gbps / clock_ghz; }
  double PeerBytesPerCycle() const { return peer_gbps / clock_ghz; }
};

}  // namespace sage::sim

#endif  // SAGE_SIM_DEVICE_SPEC_H_
