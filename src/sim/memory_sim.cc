#include "sim/memory_sim.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>

#include "sim/fault_injector.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace sage::sim {

namespace {

/// num_elems * elem_bytes with a clear failure on 64-bit overflow. The two
/// extra cachelines cover the alignment padding Register/Grow add, so the
/// base-address bump cannot wrap either.
uint64_t CheckedBufferBytes(const std::string& name, uint64_t num_elems,
                            uint32_t elem_bytes, uint64_t line) {
  SAGE_CHECK(num_elems <=
             (std::numeric_limits<uint64_t>::max() - 2 * line) / elem_bytes)
      << "buffer '" << name << "': " << num_elems << " elems of "
      << elem_bytes << " bytes overflows the 64-bit simulated address space";
  return num_elems * elem_bytes;
}

}  // namespace

MemorySim::MemorySim(const DeviceSpec& spec) : spec_(spec) {
  SAGE_CHECK_GT(spec.sector_bytes, 0u);
  SAGE_CHECK_EQ(spec.cacheline_bytes % spec.sector_bytes, 0u);
  uint64_t num_sectors_in_l2 = spec.l2_bytes / spec.sector_bytes;
  uint64_t num_sets = std::max<uint64_t>(1, num_sectors_in_l2 / spec.l2_ways);
  sets_.resize(num_sets);
  for (auto& set : sets_) {
    set.tags.assign(spec.l2_ways, 0);
    set.stamps.assign(spec.l2_ways, 0);
  }
  if (util::IsPowerOfTwo(spec.sector_bytes)) {
    sector_shift_ = std::countr_zero(static_cast<uint64_t>(spec.sector_bytes));
  }
}

Buffer MemorySim::Register(const std::string& name, uint64_t num_elems,
                           uint32_t elem_bytes, MemSpace space) {
  SAGE_CHECK_GT(elem_bytes, 0u);
  Buffer buf;
  buf.name = name;
  buf.id = next_id_++;
  buf.base = next_base_;
  buf.elem_bytes = elem_bytes;
  buf.num_elems = num_elems;
  buf.space = space;
  uint64_t line = spec_.cacheline_bytes;
  uint64_t bytes = CheckedBufferBytes(name, num_elems, elem_bytes, line);
  // Align the next base to a cache line so buffers never share sectors.
  next_base_ += (bytes + line - 1) / line * line + line;
  registered_.push_back(buf);
  return buf;
}

const Buffer* MemorySim::FindBuffer(uint32_t id) const {
  if (id == 0 || id > registered_.size()) return nullptr;
  return &registered_[id - 1];
}

void MemorySim::Grow(Buffer* buffer, uint64_t new_num_elems) {
  SAGE_CHECK(buffer != nullptr);
  if (new_num_elems <= buffer->num_elems) return;
  // Fault injection point: an injected OOM records a pending fault for the
  // engine to surface at the iteration boundary, but the grow itself still
  // happens so downstream bounds checks see a consistent simulation.
  if (injector_ != nullptr) injector_->OnGrow(buffer->name, new_num_elems);
  // Models a realloc: fresh allocation, contents conceptually copied (the
  // buffer id — and so any shadow-memory state keyed on it — is preserved),
  // old range abandoned. The old sectors linger in the L2 as dead lines,
  // exactly as after a cudaFree.
  uint64_t line = spec_.cacheline_bytes;
  uint64_t bytes = CheckedBufferBytes(buffer->name, new_num_elems,
                                      buffer->elem_bytes, line);
  buffer->base = next_base_;
  buffer->num_elems = new_num_elems;
  next_base_ += (bytes + line - 1) / line * line + line;
  // Keep the authoritative registration in sync so FindBuffer reflects the
  // post-Grow geometry (and stale copies elsewhere become detectable).
  if (buffer->id >= 1 && buffer->id <= registered_.size()) {
    registered_[buffer->id - 1] = *buffer;
  }
}

bool MemorySim::ProbeSet(L2Set& set, uint64_t tag, uint64_t* clock) {
  ++*clock;
  uint32_t victim = 0;
  uint64_t oldest = ~0ull;
  for (uint32_t w = 0; w < set.tags.size(); ++w) {
    if (set.tags[w] == tag) {
      set.stamps[w] = *clock;
      return true;
    }
    if (set.stamps[w] < oldest) {
      oldest = set.stamps[w];
      victim = w;
    }
  }
  set.tags[victim] = tag;
  set.stamps[victim] = *clock;
  return false;
}

bool MemorySim::ProbeL2(uint64_t sector) {
  // Tag 0 marks an empty way, so displace real tags by 1.
  return ProbeSet(sets_[sector % sets_.size()], sector + 1, &lru_clock_);
}

void MemorySim::CollectSectors(const Buffer& buffer,
                               std::span<const uint64_t> elem_indices,
                               std::vector<uint64_t>* out) const {
#if !defined(NDEBUG)
  for (uint64_t i : elem_indices) {
    SAGE_DCHECK(i < buffer.num_elems)
        << "buffer '" << buffer.name << "' elem " << i << " >= "
        << buffer.num_elems;
  }
#endif
  size_t n = elem_indices.size();
  out->resize(n);
  if (n == 0) return;
  uint64_t* dst = out->data();
  if (sector_shift_ >= 0 && util::IsPowerOfTwo(buffer.elem_bytes)) {
    // Both sizes are powers of two (the universal case: 4/8-byte elements,
    // 32-byte sectors), so the address → sector map is two shifts and an
    // add — vectorized 4 sectors per step under AVX2.
    util::ShiftedSectorIds(
        elem_indices.data(), n, buffer.base,
        static_cast<uint32_t>(
            std::countr_zero(static_cast<uint64_t>(buffer.elem_bytes))),
        static_cast<uint32_t>(sector_shift_), dst);
  } else {
    for (size_t i = 0; i < n; ++i) {
      dst[i] = buffer.Addr(elem_indices[i]) / spec_.sector_bytes;
    }
  }
  // Tile gathers are usually issued over ascending indices, so the sector
  // list is already sorted far more often than not — detect that in one
  // linear pass and skip the O(n log n) sort.
  if (!std::is_sorted(out->begin(), out->end())) {
    std::sort(out->begin(), out->end());
  }
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void MemorySim::CollectSectorRange(const Buffer& buffer, uint64_t first,
                                   uint64_t count,
                                   std::vector<uint64_t>* out) const {
  out->clear();
  if (count == 0) return;
  SAGE_DCHECK(first < buffer.num_elems && count <= buffer.num_elems - first)
      << "buffer '" << buffer.name << "' range [" << first << ", "
      << first + count << ") >= " << buffer.num_elems;
  // A contiguous element range touches a contiguous sector range; fill the
  // iota directly (no push_back bounds churn — the loop autovectorizes).
  uint64_t lo = buffer.Addr(first) / spec_.sector_bytes;
  uint64_t hi = buffer.Addr(first + count - 1) / spec_.sector_bytes;
  size_t n = static_cast<size_t>(hi - lo + 1);
  out->resize(n);
  uint64_t* dst = out->data();
  for (size_t i = 0; i < n; ++i) dst[i] = lo + i;
}

AccessResult MemorySim::AccessSectors(MemSpace space,
                                      std::span<const uint64_t> sectors,
                                      uint64_t useful_bytes) {
  AccessResult result;
  if (sectors.empty()) return result;
  result.sectors = static_cast<uint32_t>(sectors.size());
  result.useful_bytes = static_cast<uint32_t>(useful_bytes);
  if (space == MemSpace::kDevice) {
    for (uint64_t s : sectors) {
      if (ProbeL2(s)) {
        ++result.l2_hits;
      } else {
        ++result.l2_misses;
      }
    }
  } else {
    // Host memory is not cached by the device L2 in the on-demand model.
    result.l2_misses = result.sectors;
  }
  MemStats& stats = space == MemSpace::kDevice ? device_stats_ : host_stats_;
  ++stats.batches;
  stats.sectors += result.sectors;
  stats.l2_hits += result.l2_hits;
  stats.l2_misses += result.l2_misses;
  stats.useful_bytes += result.useful_bytes;
  stats.loaded_bytes +=
      static_cast<uint64_t>(result.sectors) * spec_.sector_bytes;
  return result;
}

AccessResult MemorySim::ApplySectorStats(MemSpace space, uint32_t num_sectors,
                                         uint32_t l2_hits, uint32_t l2_misses,
                                         uint64_t useful_bytes) {
  AccessResult result;
  if (num_sectors == 0) return result;
  result.sectors = num_sectors;
  result.l2_hits = l2_hits;
  result.l2_misses = l2_misses;
  result.useful_bytes = static_cast<uint32_t>(useful_bytes);
  MemStats& stats = space == MemSpace::kDevice ? device_stats_ : host_stats_;
  ++stats.batches;
  stats.sectors += result.sectors;
  stats.l2_hits += result.l2_hits;
  stats.l2_misses += result.l2_misses;
  stats.useful_bytes += result.useful_bytes;
  stats.loaded_bytes +=
      static_cast<uint64_t>(result.sectors) * spec_.sector_bytes;
  return result;
}

AccessResult MemorySim::Access(const Buffer& buffer,
                               std::span<const uint64_t> elem_indices) {
  if (elem_indices.empty()) return AccessResult();
  CollectSectors(buffer, elem_indices, &scratch_sectors_);
  return AccessSectors(buffer.space, scratch_sectors_,
                       elem_indices.size() * buffer.elem_bytes);
}

AccessResult MemorySim::AccessRange(const Buffer& buffer, uint64_t first,
                                    uint64_t count) {
  if (count == 0) return AccessResult();
  CollectSectorRange(buffer, first, count, &scratch_sectors_);
  return AccessSectors(buffer.space, scratch_sectors_,
                       count * buffer.elem_bytes);
}

void MemorySim::ProbeBatches(std::span<const std::span<const uint64_t>> batches,
                             util::ThreadPool* pool,
                             std::vector<BatchProbe>* out) {
  out->assign(batches.size(), BatchProbe());
  ReplayWorkspace& ws = replay_ws_;
  ws.offsets.resize(batches.size());
  size_t total = 0;
  for (size_t b = 0; b < batches.size(); ++b) {
    ws.offsets[b] = total;
    total += batches[b].size();
  }
  if (total == 0) return;

  uint32_t num_slices = 1;
  if (pool != nullptr) {
    num_slices = static_cast<uint32_t>(std::min<uint64_t>(
        {pool->workers(), sets_.size(), 64}));
  }

  // Flatten every batch's sectors to one contiguous array so the slices
  // walk dense memory; "flat index" = batch offset + lane.
  ws.sectors.resize(total);
  ws.hit.resize(total);
  for (size_t b = 0; b < batches.size(); ++b) {
    if (!batches[b].empty()) {
      std::copy(batches[b].begin(), batches[b].end(),
                ws.sectors.begin() + static_cast<ptrdiff_t>(ws.offsets[b]));
    }
  }

  const size_t num_sets = sets_.size();
  if (num_slices == 1) {
    // Single slice: probe directly in canonical order with the global
    // clock — no sharding passes needed.
    uint64_t clock = lru_clock_;
    for (size_t f = 0; f < total; ++f) {
      uint64_t sec = ws.sectors[f];
      ws.hit[f] = ProbeSet(sets_[sec % num_sets], sec + 1, &clock) ? 1 : 0;
    }
    lru_clock_ = clock;
  } else {
    // Shard: a counting sort buckets every flat index by its owning slice
    // ((sector mod sets) mod slices), preserving canonical order within
    // each bucket. Each worker then walks only its own compact list — an
    // O(total) partition replacing the old O(slices × total) skip-scan.
    SAGE_DCHECK(total <= std::numeric_limits<uint32_t>::max());
    ws.slice_of.resize(total);
    ws.shard_begin.assign(num_slices + 1, 0);
    for (size_t f = 0; f < total; ++f) {
      uint8_t sl = static_cast<uint8_t>((ws.sectors[f] % num_sets) %
                                        num_slices);
      ws.slice_of[f] = sl;
      ++ws.shard_begin[sl + 1];
    }
    for (uint32_t s = 0; s < num_slices; ++s) {
      ws.shard_begin[s + 1] += ws.shard_begin[s];
    }
    ws.shard_fill.assign(ws.shard_begin.begin(), ws.shard_begin.end() - 1);
    ws.shard_flat.resize(total);
    for (size_t f = 0; f < total; ++f) {
      ws.shard_flat[ws.shard_fill[ws.slice_of[f]]++] =
          static_cast<uint32_t>(f);
    }

    // Per-sector outcomes: each slice writes only the flags of flat
    // indices it owns, so slices never touch the same L2Set, flag byte,
    // or clock. The slice clock starts at the global clock: every new
    // stamp exceeds every stamp already in this slice's sets, so within
    // each set the stamps stay strictly increasing in canonical probe
    // order — which is all LRU compares. Hit/miss outcomes are therefore
    // identical to the serial single-clock walk, for any slice count.
    ws.slice_clock.assign(num_slices, lru_clock_);
    ws.slice_us.assign(num_slices, 0);
    pool->ParallelFor(num_slices, [&](uint32_t, size_t slice) {
      auto t0 = std::chrono::steady_clock::now();
      uint64_t clock = ws.slice_clock[slice];
      size_t end = ws.shard_begin[slice + 1];
      for (size_t s = ws.shard_begin[slice]; s < end; ++s) {
        uint32_t f = ws.shard_flat[s];
        uint64_t sec = ws.sectors[f];
        ws.hit[f] = ProbeSet(sets_[sec % num_sets], sec + 1, &clock) ? 1 : 0;
      }
      ws.slice_clock[slice] = clock;
      ws.slice_us[slice] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    });
    lru_clock_ =
        *std::max_element(ws.slice_clock.begin(), ws.slice_clock.end());
    // Host-side observability only (never part of modeled state): record
    // after the join, on the caller's thread.
    for (uint32_t s = 0; s < num_slices; ++s) {
      replay_slice_us_.Add(ws.slice_us[s]);
    }
  }

  // Fold per-batch hit counts from the 0/1 flags: a straight byte sum
  // (AVX2 psadbw under the hood; autovectorized elsewhere).
  for (size_t b = 0; b < batches.size(); ++b) {
    BatchProbe& p = (*out)[b];
    uint32_t n = static_cast<uint32_t>(batches[b].size());
    uint32_t hits = static_cast<uint32_t>(
        util::SumBytes(ws.hit.data() + ws.offsets[b], n));
    p.l2_hits = hits;
    p.l2_misses = n - hits;
  }
}

uint32_t MemorySim::CountDistinctSectors(
    const Buffer& buffer, const std::vector<uint64_t>& elem_indices) const {
  // Shares CollectSectors' vectorized address computation and sorted-input
  // fast path.
  CollectSectors(buffer, elem_indices, &scratch_sectors_);
  return static_cast<uint32_t>(scratch_sectors_.size());
}

void MemorySim::FlushL2() {
  for (auto& set : sets_) {
    std::fill(set.tags.begin(), set.tags.end(), 0);
    std::fill(set.stamps.begin(), set.stamps.end(), 0);
  }
}

void MemorySim::ResetStats() {
  device_stats_ = MemStats();
  host_stats_ = MemStats();
}

namespace {
void ExportSpaceStats(const std::string& prefix, const MemStats& s,
                      util::MetricsRegistry* registry) {
  registry->counter(prefix + "batches")->Set(s.batches);
  registry->counter(prefix + "sectors")->Set(s.sectors);
  registry->counter(prefix + "l2_hits")->Set(s.l2_hits);
  registry->counter(prefix + "l2_misses")->Set(s.l2_misses);
  registry->counter(prefix + "useful_bytes")->Set(s.useful_bytes);
  registry->counter(prefix + "loaded_bytes")->Set(s.loaded_bytes);
  registry->gauge(prefix + "l2_hit_rate")->Set(s.L2HitRate());
  registry->gauge(prefix + "amplification")->Set(s.Amplification());
}
}  // namespace

void MemorySim::ExportMetrics(const std::string& prefix,
                              util::MetricsRegistry* registry) const {
  ExportSpaceStats(prefix + "device.", device_stats_, registry);
  ExportSpaceStats(prefix + "host.", host_stats_, registry);
}

}  // namespace sage::sim
