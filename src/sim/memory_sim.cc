#include "sim/memory_sim.h"

#include <algorithm>

#include "util/logging.h"

namespace sage::sim {

MemorySim::MemorySim(const DeviceSpec& spec) : spec_(spec) {
  SAGE_CHECK_GT(spec.sector_bytes, 0u);
  SAGE_CHECK_EQ(spec.cacheline_bytes % spec.sector_bytes, 0u);
  uint64_t num_sectors_in_l2 = spec.l2_bytes / spec.sector_bytes;
  uint64_t num_sets = std::max<uint64_t>(1, num_sectors_in_l2 / spec.l2_ways);
  sets_.resize(num_sets);
  for (auto& set : sets_) {
    set.tags.assign(spec.l2_ways, 0);
    set.stamps.assign(spec.l2_ways, 0);
  }
}

Buffer MemorySim::Register(const std::string& name, uint64_t num_elems,
                           uint32_t elem_bytes, MemSpace space) {
  SAGE_CHECK_GT(elem_bytes, 0u);
  Buffer buf;
  buf.name = name;
  buf.id = next_id_++;
  buf.base = next_base_;
  buf.elem_bytes = elem_bytes;
  buf.num_elems = num_elems;
  buf.space = space;
  uint64_t bytes = num_elems * elem_bytes;
  // Align the next base to a cache line so buffers never share sectors.
  uint64_t line = spec_.cacheline_bytes;
  next_base_ += (bytes + line - 1) / line * line + line;
  return buf;
}

void MemorySim::Grow(Buffer* buffer, uint64_t new_num_elems) {
  SAGE_CHECK(buffer != nullptr);
  if (new_num_elems <= buffer->num_elems) return;
  // Models a realloc: fresh allocation, contents conceptually copied (the
  // buffer id — and so any shadow-memory state keyed on it — is preserved),
  // old range abandoned. The old sectors linger in the L2 as dead lines,
  // exactly as after a cudaFree.
  buffer->base = next_base_;
  buffer->num_elems = new_num_elems;
  uint64_t bytes = new_num_elems * buffer->elem_bytes;
  uint64_t line = spec_.cacheline_bytes;
  next_base_ += (bytes + line - 1) / line * line + line;
}

bool MemorySim::ProbeL2(uint64_t sector) {
  // Tag 0 marks an empty way, so displace real tags by 1.
  uint64_t tag = sector + 1;
  L2Set& set = sets_[sector % sets_.size()];
  ++lru_clock_;
  uint32_t victim = 0;
  uint64_t oldest = ~0ull;
  for (uint32_t w = 0; w < set.tags.size(); ++w) {
    if (set.tags[w] == tag) {
      set.stamps[w] = lru_clock_;
      return true;
    }
    if (set.stamps[w] < oldest) {
      oldest = set.stamps[w];
      victim = w;
    }
  }
  set.tags[victim] = tag;
  set.stamps[victim] = lru_clock_;
  return false;
}

AccessResult MemorySim::Access(const Buffer& buffer,
                               const std::vector<uint64_t>& elem_indices) {
  AccessResult result;
  if (elem_indices.empty()) return result;
  auto& sectors = scratch_sectors_;
  sectors.clear();
  for (uint64_t i : elem_indices) {
    SAGE_DCHECK(i < buffer.num_elems)
        << "buffer '" << buffer.name << "' elem " << i << " >= "
        << buffer.num_elems;
    sectors.push_back(buffer.Addr(i) / spec_.sector_bytes);
  }
  std::sort(sectors.begin(), sectors.end());
  sectors.erase(std::unique(sectors.begin(), sectors.end()), sectors.end());
  result.sectors = static_cast<uint32_t>(sectors.size());
  result.useful_bytes =
      static_cast<uint32_t>(elem_indices.size() * buffer.elem_bytes);

  MemStats& stats =
      buffer.space == MemSpace::kDevice ? device_stats_ : host_stats_;
  if (buffer.space == MemSpace::kDevice) {
    for (uint64_t s : sectors) {
      if (ProbeL2(s)) {
        ++result.l2_hits;
      } else {
        ++result.l2_misses;
      }
    }
  } else {
    // Host memory is not cached by the device L2 in the on-demand model.
    result.l2_misses = result.sectors;
  }
  ++stats.batches;
  stats.sectors += result.sectors;
  stats.l2_hits += result.l2_hits;
  stats.l2_misses += result.l2_misses;
  stats.useful_bytes += result.useful_bytes;
  stats.loaded_bytes +=
      static_cast<uint64_t>(result.sectors) * spec_.sector_bytes;
  return result;
}

AccessResult MemorySim::AccessRange(const Buffer& buffer, uint64_t first,
                                    uint64_t count) {
  std::vector<uint64_t> idx(count);
  for (uint64_t i = 0; i < count; ++i) idx[i] = first + i;
  return Access(buffer, idx);
}

uint32_t MemorySim::CountDistinctSectors(
    const Buffer& buffer, const std::vector<uint64_t>& elem_indices) const {
  auto& sectors = scratch_sectors_;
  sectors.clear();
  for (uint64_t i : elem_indices) {
    sectors.push_back(buffer.Addr(i) / spec_.sector_bytes);
  }
  std::sort(sectors.begin(), sectors.end());
  sectors.erase(std::unique(sectors.begin(), sectors.end()), sectors.end());
  return static_cast<uint32_t>(sectors.size());
}

void MemorySim::FlushL2() {
  for (auto& set : sets_) {
    std::fill(set.tags.begin(), set.tags.end(), 0);
    std::fill(set.stamps.begin(), set.stamps.end(), 0);
  }
}

void MemorySim::ResetStats() {
  device_stats_ = MemStats();
  host_stats_ = MemStats();
}

}  // namespace sage::sim
