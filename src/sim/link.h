#ifndef SAGE_SIM_LINK_H_
#define SAGE_SIM_LINK_H_

#include <cstdint>
#include <span>
#include <vector>

namespace sage::sim {

/// Communication-link model (PCIe host link or GPU peer link). Every frame
/// carries a control segment (header) and a data segment (payload); small
/// scattered requests waste bandwidth on headers while merged/aligned bulk
/// transfers approach the payload bandwidth — exactly the trade-off
/// Section 3.3 describes for out-of-core graph access.
class LinkModel {
 public:
  /// One logical transfer over the link.
  struct Transfer {
    uint64_t frames = 0;
    uint64_t payload_bytes = 0;
    uint64_t wire_bytes = 0;  ///< payload + per-frame headers
    double cycles = 0.0;      ///< service time incl. one request latency
  };

  /// Cumulative link counters.
  struct Stats {
    uint64_t transfers = 0;
    uint64_t frames = 0;
    uint64_t payload_bytes = 0;
    uint64_t wire_bytes = 0;
    double busy_cycles = 0.0;

    /// Effective payload ratio (1.0 = no header overhead).
    double Efficiency() const {
      return wire_bytes == 0 ? 0.0
                             : static_cast<double>(payload_bytes) /
                                   static_cast<double>(wire_bytes);
    }
  };

  LinkModel(double bytes_per_cycle, uint32_t latency_cycles,
            uint32_t frame_header_bytes, uint32_t max_payload_bytes);

  /// On-demand access to a set of sectors. Consecutive sector ids are merged
  /// into one frame (up to max payload) — the "merged and aligned" behaviour
  /// of [Min et al., 31]; scattered ids pay one header each.
  Transfer RequestSectors(std::span<const uint64_t> sorted_sector_ids,
                          uint32_t sector_bytes);
  Transfer RequestSectors(const std::vector<uint64_t>& sorted_sector_ids,
                          uint32_t sector_bytes) {
    return RequestSectors(std::span<const uint64_t>(sorted_sector_ids),
                          sector_bytes);
  }

  /// Planned bulk DMA of payload_bytes (Subway-style preloading): headers
  /// amortize over maximal frames.
  Transfer BulkTransfer(uint64_t payload_bytes);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  double bytes_per_cycle() const { return bytes_per_cycle_; }
  uint32_t latency_cycles() const { return latency_cycles_; }

 private:
  Transfer Finish(uint64_t frames, uint64_t payload);

  double bytes_per_cycle_;
  uint32_t latency_cycles_;
  uint32_t frame_header_bytes_;
  uint32_t max_payload_bytes_;
  Stats stats_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_LINK_H_
