#ifndef SAGE_SIM_DEVICE_GROUP_H_
#define SAGE_SIM_DEVICE_GROUP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/device_spec.h"
#include "sim/gpu_device.h"
#include "sim/link.h"

namespace sage::sim {

/// K simulated GPUs of one spec joined by a modeled peer link. The link is
/// a single shared path (the paper's testbed routes all inter-GPU traffic
/// through one PCIe switch), so a level's exchange is one bulk transfer of
/// the combined payload. Per-device fault injectors attach through
/// device(i)->set_fault_injector exactly as on a solo device.
class DeviceGroup {
 public:
  DeviceGroup(const DeviceSpec& spec, uint32_t count);

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(devices_.size()); }
  GpuDevice* device(uint32_t i) { return devices_[i].get(); }
  const GpuDevice* device(uint32_t i) const { return devices_[i].get(); }
  const DeviceSpec& spec() const { return spec_; }

  LinkModel& link() { return link_; }
  const LinkModel& link() const { return link_; }

  /// Ships `payload_bytes` over the shared peer link and returns the
  /// transfer record (frames, wire bytes, cycles). Zero-byte exchanges are
  /// free: no frames, no latency charge.
  LinkModel::Transfer Exchange(uint64_t payload_bytes);

  /// Modeled wall-clock seconds of a transfer at this spec's clock.
  double SecondsFor(const LinkModel::Transfer& transfer) const {
    return transfer.cycles / (spec_.clock_ghz * 1e9);
  }

 private:
  DeviceSpec spec_;
  std::vector<std::unique_ptr<GpuDevice>> devices_;
  LinkModel link_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_DEVICE_GROUP_H_
