#ifndef SAGE_SIM_REPLAY_H_
#define SAGE_SIM_REPLAY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "sim/kernel_stats.h"
#include "sim/memory_sim.h"

namespace sage::util {
class ThreadPool;
}  // namespace sage::util

namespace sage::sim {

class GpuDevice;

/// Per-worker trace of one kernel phase for the parallel execution backend
/// (DESIGN.md §5). While a recorder is bound to the calling thread
/// (GpuDevice::BindThreadRecorder), the device's charge/access calls are
/// redirected here: integer SM counters accumulate into a thread-local
/// SmCounters shard and every memory batch is reduced — on the worker, with
/// pure address arithmetic — to its sorted distinct sector list, keyed by
/// the canonical rank of the work unit that issued it. Nothing stateful
/// (L2, link, stats) is touched until GpuDevice::ReplayTraces merges all
/// workers' events back in canonical unit order.
class KernelTraceRecorder {
 public:
  /// One recorded memory batch. `unit` is the canonical rank the engine
  /// assigned the issuing work unit (its position in the serial dispatch
  /// order); replay sorts by it. Events of one unit are appended by one
  /// worker in issue order, so a stable sort reproduces the exact serial
  /// charge sequence.
  struct Event {
    uint64_t unit = 0;
    uint64_t sector_begin = 0;  ///< offset into the recorder's sector pool
    uint32_t sector_count = 0;
    uint32_t sm = 0;
    uint64_t useful_bytes = 0;
    MemSpace space = MemSpace::kDevice;
  };

  explicit KernelTraceRecorder(GpuDevice* device);

  KernelTraceRecorder(const KernelTraceRecorder&) = delete;
  KernelTraceRecorder& operator=(const KernelTraceRecorder&) = delete;

  GpuDevice* device() const { return device_; }

  /// Clears events and SM counter shards for the next phase.
  void Reset();

  /// Declares the canonical rank of the unit whose work follows.
  void BeginUnit(uint64_t unit_rank) { current_unit_ = unit_rank; }

  /// Thread-local SM counter shard (merged by ReplayTraces).
  SmCounters& local_sm(uint32_t sm) { return sms_[sm]; }

  /// Trace-mode bodies of GpuDevice::Access / AccessRange: collect sectors,
  /// record the event, return the charge-independent part of the result
  /// (sector and useful-byte counts; the L2 split is decided at replay).
  /// Device-space empty batches are skipped entirely and host-space empty
  /// batches are still recorded — both exactly as immediate mode behaves.
  AccessResult RecordAccess(uint32_t sm, const Buffer& buffer,
                            std::span<const uint64_t> elem_indices);
  AccessResult RecordAccessRange(uint32_t sm, const Buffer& buffer,
                                 uint64_t first, uint64_t count);

  const std::vector<Event>& events() const { return events_; }
  std::span<const uint64_t> sectors_of(const Event& e) const {
    return std::span<const uint64_t>(sector_pool_).subspan(e.sector_begin,
                                                           e.sector_count);
  }

  /// Adds this recorder's integer counter fields into *sms. The
  /// memory-derived fields (sectors, latency events, link cycles) must
  /// still be zero — those are charged only at replay.
  void MergeCountersInto(std::vector<SmCounters>* sms) const;

 private:
  AccessResult RecordCollected(uint32_t sm, MemSpace space,
                               uint64_t useful_bytes);

  GpuDevice* device_;
  uint64_t current_unit_ = 0;
  std::vector<SmCounters> sms_;
  std::vector<Event> events_;
  std::vector<uint64_t> sector_pool_;
  std::vector<uint64_t> scratch_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_REPLAY_H_
