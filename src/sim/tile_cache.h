#ifndef SAGE_SIM_TILE_CACHE_H_
#define SAGE_SIM_TILE_CACHE_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace sage::sim {

/// SageCache: device-resident cache of host-memory tiles (DESIGN.md §12).
///
/// When a graph's adjacency lives host-side (out-of-core mode), every
/// on-demand access would otherwise pay the PCIe frame model. This cache
/// fronts the link at *tile* granularity — a tile is a fixed, aligned group
/// of consecutive sectors, sized so one tile fills one maximum-payload
/// frame — so hot adjacency stays device-resident and only cold tiles page
/// in as merged, tile-aligned link requests.
///
/// Admission is a multi-section (segmented) LRU:
///   - a demand-missed tile enters the *probationary* section at MRU;
///   - a hit on a probationary tile promotes it to the *protected* section
///     (proven reuse), demoting protected-LRU tiles back to probationary
///     MRU when protected overflows;
///   - probationary overflow evicts its LRU tile (counted in
///     stats().evictions) — scan-heavy cold streams churn probationary
///     without ever displacing the protected hot set.
/// A degree-ranked static pre-fill (Prefill) seeds the protected section
/// before the first traversal.
///
/// Determinism: the cache is driven exclusively from the device's canonical
/// host-charge order (GpuDevice::ChargeSectorBatch — the same serial
/// statement sequence in immediate mode and trace replay), and every
/// operation here is a pure function of the access sequence. Cache state,
/// stats, and the resulting link charges are therefore bit-identical across
/// --host-threads values.
class HostTileCache {
 public:
  struct Config {
    /// Total cache capacity in bytes; 0 disables the cache.
    uint64_t capacity_bytes = 0;
    /// Sectors per tile (the paging granularity). The engine sizes this so
    /// one tile = one maximum PCIe payload.
    uint32_t sectors_per_tile = 8;
    uint32_t sector_bytes = 32;
    /// Fraction of the tile capacity reserved for the protected section.
    double protected_fraction = 0.8;
  };

  /// Cumulative counters ("cache.*" in SageScope exports). All modeled
  /// quantities — deterministic across host speeds and thread counts.
  struct Stats {
    uint64_t hits = 0;           ///< sectors served from the cache
    uint64_t misses = 0;         ///< sectors that paged over the link
    uint64_t evictions = 0;      ///< tiles evicted from probationary
    uint64_t prefill_bytes = 0;  ///< bytes admitted by static pre-fill
    uint64_t promotions = 0;     ///< probationary -> protected moves
    double HitRate() const {
      uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// (Re)configures the cache: computes section capacities and drops all
  /// resident tiles and stats. capacity_bytes < one tile disables it.
  void Configure(const Config& config);

  bool enabled() const { return capacity_tiles_ > 0; }
  const Config& config() const { return config_; }
  uint64_t capacity_tiles() const { return capacity_tiles_; }
  uint64_t tile_bytes() const {
    return static_cast<uint64_t>(config_.sectors_per_tile) *
           config_.sector_bytes;
  }

  /// Services one sorted-distinct sector batch: counts sectors whose tile
  /// is resident as hits (promoting their tiles), and expands each missing
  /// tile to its full aligned sector range in *fetch (sorted — consecutive
  /// tiles merge into maximal link frames) while admitting it to
  /// probationary. Returns the number of hit sectors.
  uint64_t Access(std::span<const uint64_t> sectors,
                  std::vector<uint64_t>* fetch);

  /// Admits `tile` directly into the protected section (static pre-fill;
  /// falls back to probationary only in the no-protected-section degenerate
  /// mode). Returns false when the tile is already resident or the section
  /// is full — pre-fill never evicts. Admitted tiles count into
  /// stats().prefill_bytes; the caller charges the bulk transfer.
  bool Prefill(uint64_t tile);

  /// True when Prefill has no capacity left (its target section is full).
  bool PrefillFull() const;

  /// True when `sector`'s tile is resident (no stats, no LRU movement).
  bool Contains(uint64_t sector) const;

  uint64_t TileOf(uint64_t sector) const {
    return sector / config_.sectors_per_tile;
  }

  const Stats& stats() const { return stats_; }
  /// Clears counters only — resident tiles keep their sections and order
  /// (warm-cache measurement windows rely on this).
  void ResetStats() { stats_ = Stats(); }

  uint64_t resident_tiles() const { return map_.size(); }

 private:
  /// Intrusive doubly-linked LRU node, one per resident tile. Nodes live in
  /// a free-listed arena so steady-state churn allocates nothing.
  struct Node {
    uint64_t tile = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
    bool protected_section = false;
  };
  /// One LRU list: head = MRU, tail = LRU.
  struct List {
    uint32_t head = kNil;
    uint32_t tail = kNil;
    uint64_t size = 0;
  };
  static constexpr uint32_t kNil = 0xffffffffu;

  uint32_t AllocNode(uint64_t tile);
  void FreeNode(uint32_t idx);
  void PushFront(List* list, uint32_t idx);
  void Unlink(List* list, uint32_t idx);
  /// Moves `idx` to its section's MRU position, promoting probationary
  /// tiles into protected (with demotion on overflow).
  void Touch(uint32_t idx);
  /// Admits a missed tile to probationary MRU, evicting probationary LRU
  /// on overflow.
  void AdmitProbationary(uint64_t tile);

  Config config_;
  uint64_t capacity_tiles_ = 0;
  uint64_t protected_capacity_ = 0;
  uint64_t probationary_capacity_ = 0;
  Stats stats_;
  std::unordered_map<uint64_t, uint32_t> map_;  ///< tile -> node index
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  List protected_;
  List probationary_;
};

}  // namespace sage::sim

#endif  // SAGE_SIM_TILE_CACHE_H_
