#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <queue>
#include <utility>

#include "apps/msbfs.h"
#include "apps/registry.h"
#include "sim/gpu_device.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/strings.h"

namespace sage::serve {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t digest, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    digest ^= (value >> (i * 8)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}

/// One simulated request flowing through the policy.
struct SimReq {
  uint64_t id = 0;
  uint32_t graph = 0;
  int cls = 0;
  uint32_t client = 0;  ///< closed loop: who waits on this request
  double arrival = 0.0;
};

/// One class's admission queue, bucketed by graph so the coalesce step is
/// O(batch) instead of an O(queue) mid-deque erase scan. Request ids are
/// monotone, so "oldest in class" (dispatch leader) and "newest in class"
/// (eviction victim) are id comparisons across the buckets — the exact
/// FIFO/LIFO order the service's single deque produces.
struct ClassQueue {
  std::vector<std::deque<SimReq>> by_graph;
  size_t size = 0;

  void Push(SimReq req) {
    by_graph[req.graph].push_back(std::move(req));
    ++size;
  }
  /// The newest request in the class (eviction victim).
  SimReq PopNewest() {
    int best = -1;
    for (size_t g = 0; g < by_graph.size(); ++g) {
      if (!by_graph[g].empty() &&
          (best < 0 || by_graph[g].back().id > by_graph[best].back().id)) {
        best = static_cast<int>(g);
      }
    }
    SimReq victim = std::move(by_graph[best].back());
    by_graph[best].pop_back();
    --size;
    return victim;
  }
  /// The graph whose front request is oldest (the dispatch leader).
  uint32_t LeaderGraph() const {
    int best = -1;
    for (size_t g = 0; g < by_graph.size(); ++g) {
      if (!by_graph[g].empty() &&
          (best < 0 || by_graph[g].front().id < by_graph[best].front().id)) {
        best = static_cast<int>(g);
      }
    }
    return static_cast<uint32_t>(best);
  }
};

/// The discrete-event simulation state. Single-threaded, virtual-time
/// only; the QosPolicy member is the exact class the live service runs.
struct Sim {
  const LoadOptions& options;
  const CostModel& model;
  QosPolicy policy;
  util::Rng rng;
  std::array<ClassQueue, kNumPriorities> queues;
  std::vector<double> server_free_at;
  std::array<std::vector<double>, kNumPriorities> latencies_ms;
  LoadReport report;
  /// Closed loop: completion time of each in-flight client's request is
  /// delivered through this callback surface (simple: a ready-time heap
  /// owned by the caller, filled via this vector of (client, time)).
  std::vector<std::pair<uint32_t, double>> client_wakeups;

  Sim(const LoadOptions& opts, const CostModel& m)
      : options(opts), model(m), policy(opts.qos), rng(opts.seed ^ 0x51u) {
    server_free_at.assign(options.servers, 0.0);
    report.shed_digest = kFnvOffset;
    for (auto& q : queues) q.by_graph.resize(model.graphs.size());
    for (auto& v : latencies_ms) {
      v.reserve(static_cast<size_t>(
          options.requests / std::max(1, kNumPriorities) + 16));
    }
  }

  std::array<size_t, kNumPriorities> Depths() const {
    std::array<size_t, kNumPriorities> d;
    for (int c = 0; c < kNumPriorities; ++c) d[c] = queues[c].size;
    return d;
  }

  size_t TotalQueued() const {
    size_t n = 0;
    for (const auto& q : queues) n += q.size;
    return n;
  }

  int IdleServer(double now) const {
    int best = -1;
    for (size_t s = 0; s < server_free_at.size(); ++s) {
      if (server_free_at[s] <= now &&
          (best < 0 || server_free_at[s] < server_free_at[best])) {
        best = static_cast<int>(s);
      }
    }
    return best;
  }

  void RecordShed(const SimReq& r, ShedReason reason) {
    report.shed_digest = FnvMix(report.shed_digest, r.id);
    report.shed_digest =
        FnvMix(report.shed_digest, static_cast<uint64_t>(reason));
  }

  /// Admits one generated request at virtual time `now`. Returns true if
  /// it was queued (false = rejected at the door; closed-loop callers
  /// then wake the client immediately).
  bool Admit(SimReq req, const std::string& tenant, double now) {
    ClassReport& cr = report.by_class[req.cls];
    ++cr.offered;
    const QosPolicy::Admission verdict =
        policy.Admit(static_cast<Priority>(req.cls), tenant, Depths(),
                     options.max_pending);
    if (!verdict.admit) {
      if (verdict.reason == ShedReason::kQuota) {
        ++cr.quota;
        ++report.quota_rejections;
      } else {
        ++cr.queue_full;
        ++report.queue_full_rejections;
      }
      RecordShed(req, verdict.reason);
      return false;
    }
    if (verdict.evict >= 0) {
      SAGE_CHECK(queues[verdict.evict].size > 0);
      SimReq victim = queues[verdict.evict].PopNewest();
      ++report.by_class[victim.cls].evicted;
      ++report.evictions;
      RecordShed(victim, ShedReason::kPriorityEviction);
      if (options.closed_loop) client_wakeups.emplace_back(victim.client, now);
    }
    ++cr.admitted;
    req.arrival = now;
    queues[req.cls].Push(std::move(req));
    return true;
  }

  /// Runs one dispatch on server `s` starting at `start` (some queue is
  /// non-empty): WRR class pick, coalesce same-graph members, service
  /// time from the cost model. Mirrors QueryService::TakeBatchLocked.
  void Dispatch(size_t s, double start) {
    const int cls = policy.NextClass(Depths());
    SAGE_CHECK(cls >= 0);
    ClassQueue& queue = queues[cls];
    const uint32_t g = queue.LeaderGraph();
    std::deque<SimReq>& sub = queue.by_graph[g];
    std::vector<SimReq> batch;
    while (!sub.empty() && batch.size() < options.max_batch) {
      batch.push_back(std::move(sub.front()));
      sub.pop_front();
      --queue.size;
    }
    const double seconds =
        model.DispatchSeconds(g, static_cast<uint32_t>(batch.size()));
    const double done = start + seconds;
    server_free_at[s] = done;
    ++report.dispatches;
    report.mean_batch += static_cast<double>(batch.size());
    report.virtual_seconds = std::max(report.virtual_seconds, done);
    for (SimReq& r : batch) {
      ++report.by_class[r.cls].completed;
      latencies_ms[r.cls].push_back((done - r.arrival) * 1e3);
      if (options.closed_loop) client_wakeups.emplace_back(r.client, done);
    }
  }

  /// Fires every dispatch that can start at or before `now` (servers
  /// freeing while work is queued). Invariant on return: queue non-empty
  /// implies every server is busy past `now`.
  void DrainUntil(double now) {
    for (;;) {
      if (TotalQueued() == 0) return;
      size_t s = 0;
      for (size_t i = 1; i < server_free_at.size(); ++i) {
        if (server_free_at[i] < server_free_at[s]) s = i;
      }
      if (server_free_at[s] > now) return;
      Dispatch(s, std::max(server_free_at[s], 0.0));
    }
  }

  void Finish() {
    // Drain: everything still queued is served as servers free up.
    while (TotalQueued() > 0) {
      size_t s = 0;
      for (size_t i = 1; i < server_free_at.size(); ++i) {
        if (server_free_at[i] < server_free_at[s]) s = i;
      }
      Dispatch(s, server_free_at[s]);
    }
    if (report.dispatches > 0) {
      report.mean_batch /= static_cast<double>(report.dispatches);
    }
    for (int c = 0; c < kNumPriorities; ++c) {
      ClassReport& cr = report.by_class[c];
      if (cr.offered > 0) {
        cr.goodput = static_cast<double>(cr.completed) /
                     static_cast<double>(cr.offered);
      }
      std::vector<double>& lat = latencies_ms[c];
      std::sort(lat.begin(), lat.end());
      if (!lat.empty()) {
        cr.p50_ms = util::PercentileOfSorted(lat, 50.0);
        cr.p99_ms = util::PercentileOfSorted(lat, 99.0);
        cr.p999_ms = util::PercentileOfSorted(lat, 99.9);
      } else {
        // A class with zero completions under extreme overload has no
        // latency distribution: report explicit zeros. PercentileOfSorted
        // asserts on an empty vector — never call it here.
        cr.p50_ms = 0.0;
        cr.p99_ms = 0.0;
        cr.p999_ms = 0.0;
      }
    }
  }
};

}  // namespace

double CostModel::DispatchSeconds(uint32_t g, uint32_t batch) const {
  SAGE_CHECK(g < graphs.size());
  const GraphCost& c = graphs[g];
  if (max_batch <= 1 || batch <= 1) return c.batch1_seconds;
  const double f = static_cast<double>(batch - 1) /
                   static_cast<double>(max_batch - 1);
  return c.batch1_seconds + (c.batchmax_seconds - c.batch1_seconds) * f;
}

util::StatusOr<CostModel> CalibrateCostModel(
    const std::vector<const graph::Csr*>& graphs,
    const core::EngineOptions& engine_options, const sim::DeviceSpec& spec,
    uint32_t max_batch) {
  if (graphs.empty()) {
    return util::Status::InvalidArgument("no graphs to calibrate");
  }
  CostModel model;
  model.max_batch = std::max<uint32_t>(max_batch, 1);
  const uint32_t sources = std::min<uint32_t>(
      model.max_batch, apps::MultiSourceBfsProgram::kMaxSources);
  for (const graph::Csr* csr : graphs) {
    SAGE_CHECK(csr != nullptr);
    sim::GpuDevice device(spec);
    auto engine = core::Engine::Create(&device, *csr, engine_options);
    if (!engine.ok()) return engine.status();
    GraphCost cost;
    {
      auto program = apps::CreateProgram("bfs");
      if (!program.ok()) return program.status();
      apps::AppParams params;
      params.sources = {0};
      auto stats = apps::RunApp(**engine, **program, params);
      if (!stats.ok()) return stats.status();
      cost.batch1_seconds = stats->seconds;
    }
    {
      auto program = apps::CreateProgram("msbfs");
      if (!program.ok()) return program.status();
      apps::AppParams params;
      params.sources.reserve(sources);
      for (uint32_t i = 0; i < sources; ++i) {
        params.sources.push_back(i % csr->num_nodes());
      }
      auto stats = apps::RunApp(**engine, **program, params);
      if (!stats.ok()) return stats.status();
      cost.batchmax_seconds = stats->seconds;
    }
    model.graphs.push_back(cost);
  }
  return model;
}

LoadReport RunLoad(const LoadOptions& options, const CostModel& model) {
  SAGE_CHECK(!model.graphs.empty());
  Sim sim(options, model);
  LoadReport& report = sim.report;
  report.requests = options.requests;

  // Capacity: the fleet's full-batch throughput over the zipf graph mix.
  // Per-request cost of graph g at a full batch is tmax_g / max_batch;
  // graph g's zipf share weights it.
  const size_t ng = model.graphs.size();
  {
    double hsum = 0.0;
    for (size_t k = 1; k <= ng; ++k) {
      hsum += 1.0 / std::pow(static_cast<double>(k), options.zipf_alpha);
    }
    double mean_cost = 0.0;
    for (size_t g = 0; g < ng; ++g) {
      const double share =
          1.0 / std::pow(static_cast<double>(g + 1), options.zipf_alpha) /
          hsum;
      mean_cost += share * model.graphs[g].batchmax_seconds /
                   static_cast<double>(std::max<uint32_t>(model.max_batch, 1));
    }
    report.capacity_rps = static_cast<double>(options.servers) / mean_cost;
  }
  report.offered_rps = options.overload * report.capacity_rps;
  SAGE_CHECK(report.offered_rps > 0.0);

  // Per-request draws (class, graph, tenant) come from one stream seeded
  // by options.seed; arrival times from their own (open loop).
  util::Rng draw(options.seed);
  auto draw_request = [&](uint64_t id, uint32_t client) {
    SimReq req;
    req.id = id;
    req.client = client;
    req.graph = static_cast<uint32_t>(draw.Zipf(ng, options.zipf_alpha));
    const double u = draw.UniformDouble();
    double acc = 0.0;
    req.cls = kNumPriorities - 1;
    for (int c = 0; c < kNumPriorities; ++c) {
      acc += options.class_mix[c];
      if (u < acc) {
        req.cls = c;
        break;
      }
    }
    return req;
  };
  auto draw_tenant = [&] {
    return "t" + std::to_string(draw.Zipf(options.num_tenants,
                                          options.zipf_alpha));
  };

  if (!options.closed_loop) {
    util::ArrivalOptions shape = options.arrival;
    shape.rate = report.offered_rps;
    util::ArrivalProcess arrivals(shape, options.seed ^ 0xA221u);
    for (uint64_t i = 0; i < options.requests; ++i) {
      const double t = arrivals.Next();
      sim.DrainUntil(t);
      SimReq req = draw_request(i, 0);
      const std::string tenant = draw_tenant();
      if (sim.Admit(std::move(req), tenant, t)) {
        const int s = sim.IdleServer(t);
        if (s >= 0) sim.Dispatch(static_cast<size_t>(s), t);
      }
    }
  } else {
    // Closed loop: `clients` callers, each submit → wait → think →
    // resubmit. Backpressure (rejections, evictions) wakes the caller
    // immediately, so offered load self-limits the way real synchronous
    // clients do.
    using Ready = std::pair<double, uint32_t>;  // (ready time, client)
    std::priority_queue<Ready, std::vector<Ready>, std::greater<Ready>> heap;
    const uint32_t clients = std::max<uint32_t>(options.clients, 1);
    for (uint32_t c = 0; c < clients; ++c) {
      // Stagger the first submissions across one mean inter-arrival span
      // so the opening instant is not a thundering herd.
      heap.emplace(draw.UniformDouble() * clients / report.offered_rps, c);
    }
    auto think = [&](double now) {
      if (options.think_seconds <= 0.0) return now;
      return now - options.think_seconds * std::log(1.0 - draw.UniformDouble());
    };
    uint64_t submitted = 0;
    while (submitted < options.requests && !heap.empty()) {
      auto [t, client] = heap.top();
      heap.pop();
      sim.DrainUntil(t);
      for (auto& [who, when] : sim.client_wakeups) {
        heap.emplace(think(when), who);
      }
      sim.client_wakeups.clear();
      SimReq req = draw_request(submitted, client);
      const std::string tenant = draw_tenant();
      ++submitted;
      if (sim.Admit(std::move(req), tenant, t)) {
        const int s = sim.IdleServer(t);
        if (s >= 0) sim.Dispatch(static_cast<size_t>(s), t);
        // The client sleeps until its request completes (a wakeup posted
        // by Dispatch or an eviction).
      } else {
        heap.emplace(think(t), client);
      }
      // Wakeups posted by the inline dispatch above.
      for (auto& [who, when] : sim.client_wakeups) {
        heap.emplace(think(when), who);
      }
      sim.client_wakeups.clear();
    }
  }

  sim.Finish();
  // Closed-loop drain may have posted final wakeups; nobody consumes them.
  sim.client_wakeups.clear();
  return report;
}

std::string LoadReport::ToJson() const {
  std::string out = "{";
  util::AppendF(&out, "\"scenario\": \"%s\"", util::JsonEscape(scenario).c_str());
  util::AppendF(&out, ", \"requests\": %llu",
                static_cast<unsigned long long>(requests));
  util::AppendF(&out, ", \"dispatches\": %llu",
                static_cast<unsigned long long>(dispatches));
  util::AppendF(&out, ", \"mean_batch\": %.3f", mean_batch);
  util::AppendF(&out, ", \"capacity_rps\": %.1f", capacity_rps);
  util::AppendF(&out, ", \"offered_rps\": %.1f", offered_rps);
  util::AppendF(&out, ", \"virtual_seconds\": %.4f", virtual_seconds);
  util::AppendF(&out, ", \"quota_rejections\": %llu",
                static_cast<unsigned long long>(quota_rejections));
  util::AppendF(&out, ", \"queue_full_rejections\": %llu",
                static_cast<unsigned long long>(queue_full_rejections));
  util::AppendF(&out, ", \"evictions\": %llu",
                static_cast<unsigned long long>(evictions));
  util::AppendF(&out, ", \"shed_digest\": \"%016llx\"",
                static_cast<unsigned long long>(shed_digest));
  out += ", \"classes\": {";
  for (int c = 0; c < kNumPriorities; ++c) {
    const ClassReport& cr = by_class[c];
    if (c > 0) out += ", ";
    util::AppendF(&out, "\"%s\": {", PriorityName(static_cast<Priority>(c)));
    util::AppendF(&out, "\"offered\": %llu",
                  static_cast<unsigned long long>(cr.offered));
    util::AppendF(&out, ", \"admitted\": %llu",
                  static_cast<unsigned long long>(cr.admitted));
    util::AppendF(&out, ", \"completed\": %llu",
                  static_cast<unsigned long long>(cr.completed));
    util::AppendF(&out, ", \"evicted\": %llu",
                  static_cast<unsigned long long>(cr.evicted));
    util::AppendF(&out, ", \"queue_full\": %llu",
                  static_cast<unsigned long long>(cr.queue_full));
    util::AppendF(&out, ", \"quota\": %llu",
                  static_cast<unsigned long long>(cr.quota));
    util::AppendF(&out, ", \"goodput\": %.4f", cr.goodput);
    util::AppendF(&out, ", \"p50_ms\": %.3f", cr.p50_ms);
    util::AppendF(&out, ", \"p99_ms\": %.3f", cr.p99_ms);
    util::AppendF(&out, ", \"p999_ms\": %.3f", cr.p999_ms);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace sage::serve
