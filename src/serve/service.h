#ifndef SAGE_SERVE_SERVICE_H_
#define SAGE_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <array>

#include "serve/circuit_breaker.h"
#include "serve/graph_registry.h"
#include "serve/qos.h"
#include "serve/types.h"
#include "sim/fault_injector.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace sage::serve {

/// SageServe: a concurrent traversal-query service (DESIGN.md §6).
///
/// Requests are admitted into a bounded queue (Submit returns
/// kResourceExhausted when it is full — backpressure) and dispatched by
/// workers running on the PR-2 host thread pool. Each registered graph
/// owns a small pool of warm engines: built on first demand, then reused
/// for every later request — construction cost and the resident-tile
/// store amortize across queries.
///
/// Batching rules (ServeOptions::batching): a dispatcher popping a
/// request also claims every compatible pending request, where
///  - N single-source "bfs" requests on one graph coalesce into one
///    MS-BFS run (≤ MultiSourceBfsProgram::kMaxSources sources) with
///    per-instance distance recording — every member's answer is
///    bit-identical to running it alone (serve_test proves it);
///  - "pagerank" requests with identical iterations, and "kcore"
///    requests with identical k, on one graph dedupe into a single run
///    whose result every member shares;
///  - "sssp" and explicit "msbfs" requests never coalesce.
/// Responses carry the dispatch's RunStats, the request's own output
/// digest, and the batch size.
///
/// SageGuard (DESIGN.md §7): every dispatch runs under the tightest
/// deadline and the cancellation tokens of its members; retryable faults
/// (kUnavailable — transient kernels, device OOM, detected ECC) are
/// retried with exponential backoff and deterministic jitter, resuming
/// from an in-memory checkpoint when checkpoint_interval is set; permanent
/// failures of a coalesced batch are bisected until the poisoned member is
/// isolated; each graph pool has a circuit breaker that fails requests
/// fast after repeated infrastructure failures and recovers via half-open
/// probes; and the effective batch cap shrinks when deadlines are missed.
///
/// Engine-reuse invariants (DESIGN.md §6): programs fully reset their
/// per-run state from AppParams, each warm engine keeps one program per
/// app and rebinds it for free, and a graph's CSR is copied into every
/// engine so registered graphs stay immutable — which is also why warm
/// state (the resident-tile store) can only accelerate a request, never
/// change its answer.
///
/// SageShard placement: the registry assigns each graph a Placement
/// (primary shard round-robin at Add); warm engines carry the shard they
/// were placed on, new engines rotate across the graph's placement, and a
/// valid Request::shard_hint steers the dispatch to an engine on that
/// shard. Responses report served_by_shard, per-shard dispatch counters
/// ("serve.shard.dispatches.<i>") feed an imbalance gauge, and with
/// ServeOptions::replicate_hot_after set, hot graphs are replicated to the
/// least-loaded shard via GraphRegistry::AddReplica — which is why the
/// registry pointer is mutable.
///
/// SageFlood QoS (DESIGN.md §11): the single FIFO is now one queue per
/// Priority class. Admission runs the wall-clock-free QosPolicy under mu_:
/// per-tenant token buckets ticked once per submission (quota denials →
/// kResourceExhausted "[shed=quota]"), then capacity — when all queues
/// together hold max_pending, a newcomer either evicts the newest queued
/// request of a strictly lower class ("[shed=priority_eviction]") or, with
/// nothing cheaper to lose, is itself refused ("[shed=queue_full]").
/// Dequeue picks the class by weighted round-robin and sheds requests
/// whose deadline is already hopeless — wall-expired, or modeled-cost
/// estimate (last clean dispatch of the same graph+app) exceeding the
/// modeled deadline — before they burn a dispatch. Every policy decision
/// depends only on the submission sequence, so the shed set is
/// bit-identical across host speeds and --host-threads values.
/// SageCache (DESIGN.md §12): the service doubles as the registry's
/// PoolEvictor. When an over-budget GraphRegistry::Add needs room, it
/// calls ReleasePoolMemory, which tears down idle warm engines from the
/// coldest pools (LRU by last dispatch) and reports the shrunken pool
/// bytes back via NotePoolBytes. Attach explicitly with
/// registry->set_evictor(&service) — eviction is opt-in so loads still
/// fail fast when shedding warm state is not acceptable.
class QueryService : public GraphRegistry::PoolEvictor {
 public:
  /// The registry must outlive the service. Options are validated here;
  /// an invalid engine_options combo surfaces as the error every Submit
  /// returns.
  QueryService(GraphRegistry* registry, ServeOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits a request. The future resolves once a dispatcher ran it.
  /// Errors: kResourceExhausted (queue full), kNotFound (unknown graph),
  /// kInvalidArgument (unknown app / bad params), kFailedPrecondition
  /// (service shut down or misconfigured).
  util::StatusOr<std::future<Response>> Submit(Request request);

  /// Drains the queue on the calling thread (batch by batch). The
  /// execution path of worker_threads == 0 mode; safe to call in any mode.
  void ProcessAllPending();

  /// Stops accepting requests, drains the queue, and joins the workers.
  /// Idempotent; the destructor calls it.
  void Shutdown();

  /// Counter values plus request-latency percentiles (p50/p95/p99 from the
  /// SageScope latency histogram). Safe from any thread.
  ServiceStats stats() const;
  const ServeOptions& options() const { return options_; }

  /// The service's SageScope metrics registry ("serve.*" counters, the
  /// latency histograms). Snapshot/ToJson are safe from any thread.
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// GraphRegistry::PoolEvictor: frees warm-engine pool memory, coldest
  /// pools first (LRU by last dispatch, name-tiebroken), evicting only
  /// idle engines — in-flight dispatches keep theirs. Returns the bytes
  /// freed; bumps "serve.cache.evictions" once per engine torn down.
  /// Called by the registry without its lock held (service -> registry is
  /// the one legal lock order).
  uint64_t ReleasePoolMemory(uint64_t bytes_needed) override;

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued request plus the promise its future watches.
  struct Pending {
    Request request;
    std::promise<Response> promise;
    Clock::time_point submitted_at;
    /// SageScope span id: keys the request's async 'b'/'e' trace events.
    uint64_t span_id = 0;
  };

  /// One warm engine: its own simulated device, the engine, and the
  /// per-app programs bound to it (created once, reused every dispatch).
  struct WarmEngine {
    explicit WarmEngine(const sim::DeviceSpec& spec) : device(spec) {}
    sim::GpuDevice device;
    std::unique_ptr<core::Engine> engine;
    std::map<std::string, std::unique_ptr<core::FilterProgram>> programs;
    /// This engine's deterministic fault schedule (ServeOptions::fault_spec;
    /// null when injection is off). Owned here because its counters are
    /// device-lifetime state.
    std::unique_ptr<sim::FaultInjector> injector;
    /// Service-wide warm-engine ordinal; labels this engine's trace tracks.
    uint32_t id = 0;
    /// Placement shard this engine serves (SageShard).
    uint32_t shard = 0;
    bool busy = false;
  };
  struct GraphPool {
    std::vector<std::unique_ptr<WarmEngine>> engines;
    /// Per-graph breaker (created on first dispatch for the graph).
    std::unique_ptr<CircuitBreaker> breaker;
    /// Dispatches executed for this graph (feeds hot-graph replication).
    uint64_t dispatches = 0;
    /// lru_clock_ stamp of the last engine acquisition for this graph —
    /// the recency key ReleasePoolMemory orders eviction victims by.
    uint64_t last_dispatch = 0;
  };

  /// What one guarded engine run of a batch produced (see RunOnEngine).
  struct DispatchOutcome {
    util::Status status;            ///< final status after retries
    core::RunStats stats;           ///< stats of the last attempt
    std::vector<uint64_t> digests;  ///< per-member digests when ok
    uint32_t attempts = 1;
    uint32_t retries = 0;
    uint32_t resumes = 0;
    uint32_t checkpoint_fallbacks = 0;
    double backoff_ms = 0.0;        ///< computed backoff across retries
  };

  /// What TakeBatchLocked hands the dispatcher: the batch to run plus any
  /// requests shed at dequeue (hopeless deadlines), with their reasons.
  struct Taken {
    std::vector<Pending> batch;
    std::vector<Pending> shed;
    std::vector<ShedReason> shed_reasons;
    Clock::time_point taken_at;
  };

  util::Status ValidateRequest(const Request& request) const;
  /// SageVet program admission: the app's pre-flight vet verdict at
  /// options_.engine_options.vet_level, computed once per app name and
  /// cached for the service's lifetime (programs are static — their
  /// footprints cannot change between requests). kFailedPrecondition for
  /// unsound programs; OK at kOff or for clean/warning verdicts.
  util::Status VetForAdmission(const std::string& app) const;
  /// Picks the next class by WRR, pops its front request plus every
  /// compatible pending one from that class's queue, shedding
  /// hopeless-deadline requests along the way (mu_ held, some queue
  /// non-empty). May return an empty batch when every candidate shed.
  Taken TakeBatchLocked();
  /// Why `request` should shed at dequeue instead of dispatching: its
  /// absolute wall deadline already passed, or the modeled-cost estimate
  /// for its graph+app exceeds its modeled deadline. kNone = dispatch it.
  ShedReason DequeueShedReasonLocked(const Request& request) const;
  /// Resolves one policy-shed request: kDeadlineExceeded for deadline
  /// drops, kResourceExhausted for evictions, with the machine-readable
  /// "[shed=<reason>]" token, and bumps the per-class shed counters.
  void ResolveShed(Pending pending, ShedReason reason,
                   Clock::time_point taken_at);
  /// Runs one batch on a pooled engine and fulfills its promises. The
  /// SageGuard dispatch path: sweeps pre-cancelled members, consults the
  /// graph's circuit breaker, runs with retries via RunOnEngine, bisects
  /// coalesced batches on permanent (kInternal) failures so one poisoned
  /// member cannot fail the rest, and adapts the batch cap on deadline
  /// misses.
  void ExecuteBatch(std::vector<Pending> batch);
  /// One guarded engine run of `batch` (leader `lead`), including the
  /// retry / checkpoint-resume loop. Does not touch promises or stats.
  DispatchOutcome RunOnEngine(WarmEngine* warm, const Request& lead,
                              const std::vector<Pending>& batch);
  /// The graph's circuit breaker, created on first use.
  CircuitBreaker* BreakerFor(const std::string& graph);
  /// Computes (and in worker mode sleeps) the deterministic-jitter backoff
  /// before retry `attempt` of `request_id`'s dispatch. Returns the
  /// computed delay in milliseconds (the caller accumulates it into the
  /// dispatch outcome and the backoff gauge).
  double RetryBackoff(uint64_t request_id, uint32_t attempt);
  /// Stamps `response` with this request's timing (queue wait measured
  /// against `taken_at`; `setup_ms`/`run_ms` are the dispatcher-measured
  /// segments shared by the whole batch), folds the latency into the
  /// SageScope histograms, emits the span-end trace event, and fulfills
  /// the promise.
  void Resolve(Pending pending, Response response, Clock::time_point taken_at,
               double setup_ms, double run_ms);
  /// Emits the wall-clock dispatch slice and the dispatch's modeled-time
  /// kernel slices (consuming the engine's kernel records from
  /// `kernel_base` on). Requires options_.trace != nullptr; called while
  /// `warm` is still owned by this dispatcher.
  void EmitDispatchTrace(WarmEngine* warm, const Request& lead,
                         size_t batch_size, uint64_t dispatch,
                         const DispatchOutcome& out, double start_us,
                         size_t kernel_base);
  /// Blocks until a warm engine for `graph` is free (creating one if the
  /// pool is below engines_per_graph). A valid `shard_hint` inside the
  /// graph's placement is preferred both when picking an idle engine and
  /// when placing a new one; otherwise new engines rotate across the
  /// placement's shards.
  WarmEngine* AcquireEngine(const std::string& graph, uint32_t shard_hint);
  void ReleaseEngine(WarmEngine* engine);
  /// The cached program in slot `key` of a warm engine, created on first
  /// use via apps::CreateProgram(app). The batched-BFS recorder lives in
  /// its own slot ("bfs.batch") so its recording mode never bleeds into
  /// explicit msbfs requests.
  core::FilterProgram* Program(WarmEngine* engine, const std::string& key,
                               const std::string& app);
  void WorkerLoop();
  /// SageShard accounting after a dispatch ran on `shard`: bumps the
  /// per-shard counter and the imbalance gauge, and — when
  /// replicate_hot_after is set — replicates `graph` to the least-loaded
  /// shard each time its dispatch count crosses a threshold multiple.
  void RecordShardDispatch(const std::string& graph, uint32_t shard);

  GraphRegistry* registry_;
  ServeOptions options_;
  util::Status init_error_;
  /// Parsed ServeOptions::fault_spec (empty = no injection).
  sim::FaultSpec fault_spec_;
  util::ThreadPool pool_;

  /// Monotonic dispatch counter — the deterministic "clock" circuit
  /// breakers cool down against.
  std::atomic<uint64_t> dispatch_seq_{0};
  /// Monotonic request-span ids for trace export.
  std::atomic<uint64_t> span_seq_{0};

  // SageScope: the ServiceStats counters live in this registry (updated
  // lock-free via the cached pointers below); stats() reassembles the
  // legacy struct from it.
  util::MetricsRegistry metrics_;
  struct Metric {
    util::Counter* submitted;
    util::Counter* rejected;
    util::Counter* completed;
    util::Counter* batches;
    util::Counter* coalesced;
    util::Counter* engines_created;
    util::Counter* retries;
    util::Counter* resumes;
    util::Counter* checkpoint_fallbacks;
    util::Counter* batch_splits;
    util::Counter* breaker_opens;
    util::Counter* breaker_rejects;
    util::Counter* deadline_misses;
    util::Counter* cancelled;
    util::Counter* shard_replications;
    /// Warm engines torn down by ReleasePoolMemory (SageCache).
    util::Counter* cache_evictions;
    // SageFlood (indexed by Priority).
    std::array<util::Counter*, kNumPriorities> submitted_by_class;
    std::array<util::Counter*, kNumPriorities> completed_by_class;
    std::array<util::Counter*, kNumPriorities> shed_by_class;
    util::Counter* quota_rejections;
    util::Counter* deadline_drops;
    util::Gauge* backoff_ms;
    /// Request-latency spans in microseconds (totals are what the p50/p95/
    /// p99 in ServiceStats come from).
    util::HistogramMetric* latency_total_us;
    util::HistogramMetric* latency_queue_us;
    util::HistogramMetric* latency_run_us;
  } m_{};
  /// Per-shard dispatch counters ("serve.shard.dispatches.<i>", one per
  /// registry shard) and the max/mean imbalance gauge they feed.
  std::vector<util::Counter*> m_shard_dispatches_;
  util::Gauge* m_shard_imbalance_ = nullptr;

  /// SageVet admission cache: app name -> vet verdict (guarded by vet_mu_;
  /// separate from mu_ so a slow first-time probe never blocks dispatch).
  mutable std::mutex vet_mu_;
  mutable std::map<std::string, util::Status> vet_cache_;

  mutable std::mutex mu_;  // guards queues_, pools_, stopping_, batch cap,
                           // qos_, cost_estimate_
  std::condition_variable queue_cv_;
  std::condition_variable engine_cv_;
  /// One admission queue per Priority class (SageFlood).
  std::array<std::deque<Pending>, kNumPriorities> queues_;
  std::map<std::string, GraphPool> pools_;
  /// The QoS policy (quota buckets, WRR credit). Wall-clock-free; shared
  /// logic with the bench_load simulator.
  QosPolicy qos_;
  /// Modeled seconds of the last clean dispatch per "graph\napp" — the
  /// deadline-infeasibility estimate DequeueShedReasonLocked consults.
  /// Modeled time is deterministic (PR-2), so this map evolves identically
  /// across host speeds and thread counts in synchronous mode.
  std::map<std::string, double> cost_estimate_;
  /// Adaptive batch cap (<= options_.max_batch); guarded by mu_.
  uint32_t effective_max_batch_ = 1;
  /// Monotonic engine-acquisition clock stamping GraphPool::last_dispatch
  /// (guarded by mu_). Deterministic in synchronous mode: it advances in
  /// dispatch order, not wall-clock order.
  uint64_t lru_clock_ = 0;
  bool stopping_ = false;

  size_t TotalQueuedLocked() const {
    size_t n = 0;
    for (const auto& q : queues_) n += q.size();
    return n;
  }
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_SERVICE_H_
