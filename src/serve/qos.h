#ifndef SAGE_SERVE_QOS_H_
#define SAGE_SERVE_QOS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/token_bucket.h"

namespace sage::serve {

/// Admission classes, ordered from most to least important. The numeric
/// value doubles as the shed order: under pressure the policy evicts the
/// highest-valued non-empty class first.
enum class Priority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
  kBestEffort = 2,
};

inline constexpr int kNumPriorities = 3;

const char* PriorityName(Priority p);

/// Parses "interactive" / "batch" / "besteffort" (also "best-effort",
/// "best_effort"). Returns false on anything else.
bool ParsePriority(const std::string& text, Priority* out);

/// Machine-readable reason a request was shed instead of served. Encoded
/// verbatim into the response status message as "[shed=<name>]" so callers
/// can dispatch on it without string-matching prose.
enum class ShedReason : uint8_t {
  kNone = 0,
  /// Admission queue full and nothing lower-priority to evict.
  kQueueFull,
  /// Evicted from the queue to admit a higher-priority request.
  kPriorityEviction,
  /// Tenant exceeded its token-bucket quota.
  kQuota,
  /// Modeled cost says the deadline cannot be met; dropped at dequeue.
  kDeadlineUnmeetable,
  /// Absolute wall deadline already passed at dequeue.
  kDeadlineExpired,
};

const char* ShedReasonName(ShedReason r);

struct QosOptions {
  /// Weighted-round-robin dequeue weights per class (interactive, batch,
  /// best-effort). A class with weight 0 is served only when every
  /// positive-weight class is empty.
  std::array<uint32_t, kNumPriorities> weights{16, 4, 1};

  /// Per-tenant token-bucket refill per admission tick. The policy ticks
  /// once per submission, so this is the share of total traffic one tenant
  /// may consume (0.12 = 12%). 0 disables quotas.
  double tenant_rate_per_tick = 0.0;

  /// Credit a tenant may bank for bursts.
  double tenant_burst = 32.0;

  /// Longest accepted tenant id; longer ids are rejected at Submit.
  size_t max_tenant_chars = 64;
};

/// The admission/dequeue policy shared by the live QueryService and the
/// virtual-time load simulator. Everything here is driven by logical
/// ticks and queue depths — no wall clock, no randomness — so the same
/// submission sequence always sheds the same set of requests, regardless
/// of host speed or `--host-threads`.
///
/// Not thread-safe: the service calls it under its admission mutex, the
/// simulator is single-threaded.
class QosPolicy {
 public:
  explicit QosPolicy(const QosOptions& options);

  struct Admission {
    bool admit = false;
    ShedReason reason = ShedReason::kNone;
    /// When `reason == kPriorityEviction`: the class whose newest queued
    /// request must be evicted to make room. -1 otherwise.
    int evict = -1;
  };

  /// Decides the fate of one submission given current per-class queue
  /// depths. Advances the logical clock (quota refill) by one tick.
  /// Outcomes: plain admit; admit-with-eviction (a strictly lower-priority
  /// queued request is shed to make room); deny (quota, or queue full with
  /// nothing cheaper to evict).
  Admission Admit(Priority priority, const std::string& tenant,
                  const std::array<size_t, kNumPriorities>& depth,
                  size_t max_pending);

  /// Weighted-round-robin pick of the next class to dequeue from, or -1 if
  /// all queues are empty. Consumes one credit from the chosen class.
  int NextClass(const std::array<size_t, kNumPriorities>& depth);

  uint64_t ticks() const { return tick_; }

 private:
  QosOptions options_;
  uint64_t tick_ = 0;
  std::array<uint64_t, kNumPriorities> credit_;
  std::map<std::string, util::TokenBucket> buckets_;
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_QOS_H_
