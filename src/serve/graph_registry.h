#ifndef SAGE_SERVE_GRAPH_REGISTRY_H_
#define SAGE_SERVE_GRAPH_REGISTRY_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "util/status.h"

namespace sage::serve {

/// Load-once / serve-many graph store. Graphs are registered under a name
/// and live for the registry's lifetime; QueryService engines are built
/// from them on demand (each engine copies the CSR, so a registered graph
/// is never mutated by traversals — including sampling reordering).
///
/// Thread-safe. Find returns a stable pointer: entries are never removed
/// and std::map nodes do not move on insert.
class GraphRegistry {
 public:
  /// Registers `csr` under `name`. kInvalidArgument for an empty name, a
  /// duplicate registration (graphs are immutable once registered), or a
  /// CSR that fails structural validation (graph::ValidateCsr) — corrupt
  /// graphs are rejected at load time, not traversal time.
  util::Status Add(const std::string& name, graph::Csr csr);

  /// The registered graph, or nullptr.
  const graph::Csr* Find(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, graph::Csr> graphs_;
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_GRAPH_REGISTRY_H_
