#ifndef SAGE_SERVE_GRAPH_REGISTRY_H_
#define SAGE_SERVE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "serve/types.h"
#include "util/status.h"

namespace sage::serve {

/// Load-once / serve-many graph store. Graphs are registered under a name
/// and live for the registry's lifetime; QueryService engines are built
/// from them on demand (each engine copies the CSR, so a registered graph
/// is never mutated by traversals — including sampling reordering).
///
/// SageShard: the registry is also the placement authority. Built for a
/// shard count, it assigns every graph a Placement at Add time (primary
/// shards round-robin in registration order) and grows placements via
/// AddReplica when the service decides a graph is hot.
///
/// Thread-safe. Find returns a stable pointer: entries are never removed
/// and std::map nodes do not move on insert.
class GraphRegistry {
 public:
  /// A registry spanning `num_shards` placement shards (0 is clamped to
  /// 1). The default single-shard registry makes every placement
  /// {primary=0} — the pre-shard behavior.
  explicit GraphRegistry(uint32_t num_shards = 1)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Registers `csr` under `name` and assigns its placement (primary =
  /// next shard round-robin). kInvalidArgument for an empty name, a
  /// duplicate registration (graphs are immutable once registered), or a
  /// CSR that fails structural validation (graph::ValidateCsr) — corrupt
  /// graphs are rejected at load time, not traversal time.
  util::Status Add(const std::string& name, graph::Csr csr);

  /// The registered graph, or nullptr.
  const graph::Csr* Find(const std::string& name) const;

  /// The graph's placement (a copy — placements can grow concurrently via
  /// AddReplica). A default Placement for unknown names; callers that care
  /// should check Find first.
  Placement PlacementOf(const std::string& name) const;

  /// Extends the graph's placement with `shard`. kNotFound for an unknown
  /// graph, kInvalidArgument for shard >= num_shards(); adding a shard
  /// already in the placement is a no-op (OK).
  util::Status AddReplica(const std::string& name, uint32_t shard);

  uint32_t num_shards() const { return num_shards_; }

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  struct Entry {
    graph::Csr csr;
    Placement placement;
  };

  const uint32_t num_shards_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> graphs_;
  uint32_t next_primary_ = 0;  ///< round-robin cursor, guarded by mu_
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_GRAPH_REGISTRY_H_
