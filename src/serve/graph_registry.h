#ifndef SAGE_SERVE_GRAPH_REGISTRY_H_
#define SAGE_SERVE_GRAPH_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "graph/csr.h"
#include "serve/types.h"
#include "util/status.h"

namespace sage::serve {

/// Load-once / serve-many graph store. Graphs are registered under a name
/// and live for the registry's lifetime; QueryService engines are built
/// from them on demand (each engine copies the CSR, so a registered graph
/// is never mutated by traversals — including sampling reordering).
///
/// SageShard: the registry is also the placement authority. Built for a
/// shard count, it assigns every graph a Placement at Add time (primary
/// shards round-robin in registration order) and grows placements via
/// AddReplica when the service decides a graph is hot.
///
/// SageCache (DESIGN.md §12): the registry is additionally the memory-
/// budget authority. With set_memory_budget_bytes > 0 it tracks every
/// graph's CSR bytes plus the warm-engine pool bytes the service reports
/// (NotePoolBytes), and an Add that would exceed the budget first asks the
/// attached PoolEvictor to shed cold warm-engine pools (LRU by last
/// dispatch) before giving up with kResourceExhausted. Only pools are ever
/// shed — graph entries are never removed, so Find pointers stay stable.
///
/// Thread-safe. Find returns a stable pointer: entries are never removed
/// and std::map nodes do not move on insert.
class GraphRegistry {
 public:
  /// Releases warm-engine pool memory on the registry's behalf
  /// (implemented by QueryService). Called by Add WITHOUT the registry
  /// lock held; the implementation may take its own locks and call back
  /// into NotePoolBytes. It must only release idle resources — in-flight
  /// dispatches keep their engines.
  class PoolEvictor {
   public:
    virtual ~PoolEvictor() = default;
    /// Frees at least `bytes_needed` bytes of pool memory if possible,
    /// coldest pools first. Returns the bytes actually freed (possibly 0).
    virtual uint64_t ReleasePoolMemory(uint64_t bytes_needed) = 0;
  };

  /// A registry spanning `num_shards` placement shards (0 is clamped to
  /// 1). The default single-shard registry makes every placement
  /// {primary=0} — the pre-shard behavior.
  explicit GraphRegistry(uint32_t num_shards = 1)
      : num_shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Registers `csr` under `name` and assigns its placement (primary =
  /// next shard round-robin). kInvalidArgument for an empty name, a
  /// duplicate registration (graphs are immutable once registered), or a
  /// CSR that fails structural validation (graph::ValidateCsr) — corrupt
  /// graphs are rejected at load time, not traversal time.
  /// kResourceExhausted when a memory budget is set and the graph does not
  /// fit even after the evictor shed every cold pool it could.
  util::Status Add(const std::string& name, graph::Csr csr);

  /// The registered graph, or nullptr.
  const graph::Csr* Find(const std::string& name) const;

  /// The graph's placement (a copy — placements can grow concurrently via
  /// AddReplica). A default Placement for unknown names; callers that care
  /// should check Find first.
  Placement PlacementOf(const std::string& name) const;

  /// Extends the graph's placement with `shard`. kNotFound for an unknown
  /// graph, kInvalidArgument for shard >= num_shards(); adding a shard
  /// already in the placement is a no-op (OK).
  util::Status AddReplica(const std::string& name, uint32_t shard);

  uint32_t num_shards() const { return num_shards_; }

  /// Shared memory budget over graph CSRs + reported pool bytes; 0 (the
  /// default) disables budget enforcement entirely.
  void set_memory_budget_bytes(uint64_t bytes);
  uint64_t memory_budget_bytes() const;

  /// Attaches the pool evictor consulted by over-budget Adds (nullptr
  /// detaches). The evictor must outlive the registry or detach first.
  void set_evictor(PoolEvictor* evictor);

  /// Detaches `evictor` iff it is the currently attached one (no-op
  /// otherwise). QueryService::Shutdown calls this so the registry never
  /// holds a dangling evictor past the service's lifetime.
  void ClearEvictor(PoolEvictor* evictor);

  /// The service reports each graph's current warm-engine pool bytes here
  /// whenever a pool grows or shrinks. Unknown names are ignored (the pool
  /// may outlive interest in accounting during shutdown races).
  void NotePoolBytes(const std::string& name, uint64_t bytes);

  /// Currently tracked bytes: every registered CSR plus every reported
  /// pool. What Add compares against the budget.
  uint64_t tracked_bytes() const;

  std::vector<std::string> Names() const;
  size_t size() const;

 private:
  struct Entry {
    graph::Csr csr;
    Placement placement;
    uint64_t csr_bytes = 0;
    uint64_t pool_bytes = 0;
  };

  const uint32_t num_shards_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> graphs_;
  uint32_t next_primary_ = 0;  ///< round-robin cursor, guarded by mu_
  uint64_t memory_budget_bytes_ = 0;  ///< guarded by mu_
  uint64_t tracked_bytes_ = 0;        ///< guarded by mu_
  PoolEvictor* evictor_ = nullptr;    ///< guarded by mu_
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_GRAPH_REGISTRY_H_
