#ifndef SAGE_SERVE_TYPES_H_
#define SAGE_SERVE_TYPES_H_

#include <cstdint>
#include <string>

#include "apps/msbfs.h"
#include "apps/registry.h"
#include "core/engine.h"
#include "core/filter.h"
#include "sim/device_spec.h"

namespace sage::serve {

/// Configuration of a QueryService.
struct ServeOptions {
  /// Warm engines kept per registered graph. Engines are created lazily on
  /// first demand and reused (with their resident-tile stores warm) for
  /// every later request on that graph.
  uint32_t engines_per_graph = 2;
  /// Admission-queue capacity: Submit rejects with kResourceExhausted once
  /// this many requests are pending — the backpressure signal.
  size_t max_pending = 1024;
  /// Dispatch workers drained from the PR-2 host thread pool. 0 runs the
  /// service synchronously: Submit only enqueues and the caller drives
  /// execution via ProcessAllPending (deterministic batching; what the
  /// tests and benches use).
  uint32_t worker_threads = 2;
  /// Coalesce compatible pending requests into one dispatch (see
  /// QueryService class comment for the batching rules).
  bool batching = true;
  /// Most requests one dispatch may serve. BFS coalescing is additionally
  /// capped at MultiSourceBfsProgram::kMaxSources.
  uint32_t max_batch = apps::MultiSourceBfsProgram::kMaxSources;
  /// The simulated device each warm engine runs on.
  sim::DeviceSpec device_spec;
  /// Options for every pooled engine. host_threads defaults to 1 here
  /// (serial): service workers already run concurrently, and nesting a
  /// per-engine pool under each would oversubscribe the host.
  core::EngineOptions engine_options;

  ServeOptions() { engine_options.host_threads = 1; }
};

/// One traversal query. `app` is a canonical registry name
/// (apps::RegisteredApps); `graph` names a GraphRegistry entry.
struct Request {
  std::string graph;
  std::string app;
  apps::AppParams params;
};

/// The answer to one Request, delivered through its future.
struct Response {
  /// OK if the run completed; the error otherwise (fields below are then
  /// meaningless).
  util::Status status;
  /// Stats of the dispatch that served this request. A coalesced dispatch
  /// reports the same (shared) stats to every member — divide by
  /// batch_size for a per-request amortized cost.
  core::RunStats stats;
  /// apps::OutputDigest of this request's own result (for a BFS request
  /// served by a coalesced MS-BFS run: the digest of *its* instance's
  /// distances — bit-identical to running the request alone).
  uint64_t output_digest = 0;
  /// How many requests shared the dispatch (1 = ran alone).
  uint32_t batch_size = 1;
};

/// Monotonic service counters (see QueryService::stats).
struct ServiceStats {
  uint64_t submitted = 0;        ///< accepted into the queue
  uint64_t rejected = 0;         ///< refused with kResourceExhausted
  uint64_t completed = 0;        ///< responses delivered
  uint64_t batches = 0;          ///< dispatches executed
  uint64_t coalesced = 0;        ///< requests served by a >1 dispatch
  uint64_t engines_created = 0;  ///< warm engines built across all graphs
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_TYPES_H_
