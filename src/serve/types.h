#ifndef SAGE_SERVE_TYPES_H_
#define SAGE_SERVE_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <array>

#include "apps/msbfs.h"
#include "apps/registry.h"
#include "core/engine.h"
#include "core/filter.h"
#include "core/guard.h"
#include "serve/circuit_breaker.h"
#include "serve/qos.h"
#include "sim/device_spec.h"
#include "util/trace.h"

namespace sage::serve {

/// Retry policy for retryable (kUnavailable) dispatch failures: transient
/// kernel faults, injected device OOM, detected ECC errors.
struct RetryOptions {
  /// Total attempts per dispatch (1 = no retries).
  uint32_t max_attempts = 3;
  /// Exponential backoff: attempt k waits ~base * 2^(k-1) ms, capped.
  double backoff_base_ms = 1.0;
  double backoff_max_ms = 64.0;
  /// Jitter is drawn deterministically from this seed, the request id, and
  /// the attempt number (SplitMix64) — replayable, yet decorrelated across
  /// requests. The computed delay is always recorded in ServiceStats; the
  /// thread actually sleeps only in worker mode (worker_threads > 0), so
  /// synchronous tests stay instant and deterministic.
  uint64_t jitter_seed = 0x53414745u;  // "SAGE"
};

/// Shard placement of one registered graph: the primary shard plus any
/// replicas added for hot graphs. One struct shared by GraphRegistry
/// (which assigns placements) and QueryService (which routes dispatches
/// by them) — the single source of placement truth, replacing ad-hoc
/// per-graph pool bookkeeping.
struct Placement {
  /// Sentinel for "no shard": an absent Request::shard_hint or the
  /// served_by_shard of a response that never reached an engine.
  static constexpr uint32_t kNoShard = 0xffffffffu;

  uint32_t primary = 0;
  /// Every shard serving the graph; the primary is always first, replicas
  /// follow in the order they were added.
  std::vector<uint32_t> shards{0};

  bool OnShard(uint32_t shard) const {
    for (uint32_t s : shards) {
      if (s == shard) return true;
    }
    return false;
  }
};

/// Configuration of a QueryService.
struct ServeOptions {
  /// Warm engines kept per registered graph. Engines are created lazily on
  /// first demand and reused (with their resident-tile stores warm) for
  /// every later request on that graph.
  uint32_t engines_per_graph = 2;
  /// Admission-queue capacity: Submit rejects with kResourceExhausted once
  /// this many requests are pending — the backpressure signal.
  size_t max_pending = 1024;
  /// Dispatch workers drained from the PR-2 host thread pool. 0 runs the
  /// service synchronously: Submit only enqueues and the caller drives
  /// execution via ProcessAllPending (deterministic batching; what the
  /// tests and benches use).
  uint32_t worker_threads = 2;
  /// Coalesce compatible pending requests into one dispatch (see
  /// QueryService class comment for the batching rules).
  bool batching = true;
  /// Most requests one dispatch may serve. BFS coalescing is additionally
  /// capped at MultiSourceBfsProgram::kMaxSources.
  uint32_t max_batch = apps::MultiSourceBfsProgram::kMaxSources;
  /// The simulated device each warm engine runs on.
  sim::DeviceSpec device_spec;
  /// Options for every pooled engine. host_threads defaults to 1 here
  /// (serial): service workers already run concurrently, and nesting a
  /// per-engine pool under each would oversubscribe the host.
  core::EngineOptions engine_options;

  // --- SageGuard (DESIGN.md §7) ---

  /// Retry policy for kUnavailable dispatch failures.
  RetryOptions retry;
  /// Per-graph circuit breaker fed by infrastructure failures.
  BreakerOptions breaker;
  /// Fault scenario in the sim::ParseFaultSpec format ("" = no injection).
  /// Each warm engine gets its own deterministic FaultInjector built from
  /// this spec, installed after engine construction so only run-time
  /// activity is a fault target. A parse error surfaces as the error every
  /// Submit returns.
  std::string fault_spec;
  /// Save an in-memory checkpoint every N completed engine iterations
  /// during a dispatch (0 = never). With checkpoints, a retry resumes from
  /// the last good iteration instead of rerunning from scratch; a corrupted
  /// checkpoint (kCorruption on resume) falls back to a full rerun
  /// automatically.
  uint32_t checkpoint_interval = 0;
  /// Adapt the effective batch cap (AIMD): halve it when a dispatch misses
  /// its deadline, recover by +1 per clean dispatch up to max_batch.
  bool adaptive_batch = true;

  // --- SageShard (sharded placement) ---

  /// Replicate a graph to one additional shard every time its dispatch
  /// count crosses a multiple of this threshold (0 = never). The replica
  /// goes to the least-dispatched shard not already serving the graph, so
  /// hot graphs spread while cold ones stay put.
  uint64_t replicate_hot_after = 0;

  // --- SageScope (DESIGN.md §8) ---

  /// Chrome-trace sink (borrowed; must outlive the service; null = off).
  /// When set, the service emits per-request async spans (submit →
  /// response), per-dispatch slices on the worker wall-clock track, and —
  /// with warm-engine timelines enabled automatically — modeled-time kernel
  /// slices on one track per warm engine.
  util::TraceLog* trace = nullptr;

  // --- SageFlood (DESIGN.md §11) ---

  /// QoS policy: per-class WRR weights, per-tenant token-bucket quotas,
  /// tenant-id limits. Defaults keep quotas off and — with every request
  /// left at the default kInteractive priority — reproduce the old
  /// single-FIFO behavior exactly.
  QosOptions qos;

  ServeOptions() { engine_options.host_threads = 1; }
};

/// One traversal query. `app` is a canonical registry name
/// (apps::RegisteredApps); `graph` names a GraphRegistry entry.
struct Request {
  std::string graph;
  std::string app;
  apps::AppParams params;
  /// Client-chosen identifier, echoed in every failure message ("request
  /// 42 (bfs@web): ...") and folded into the retry-jitter draw.
  uint64_t id = 0;
  /// Per-request deadlines, 0 = none. A coalesced dispatch runs under the
  /// tightest deadline of its members. Modeled-seconds deadlines
  /// (RunStats::seconds) are deterministic — the same run always trips at
  /// the same iteration; wall deadlines are what production serving
  /// enforces. Exceeding either fails the dispatch with kDeadlineExceeded.
  double deadline_modeled_seconds = 0.0;
  double deadline_wall_seconds = 0.0;
  /// Optional cooperative cancellation. A request cancelled before
  /// dispatch is answered kAborted without running; a solo dispatch also
  /// honors cancellation at engine iteration boundaries (coalesced members
  /// share one engine run and are only swept at dispatch boundaries).
  std::shared_ptr<core::CancellationToken> cancel;
  /// Preferred shard (Placement::kNoShard = no preference). A hint inside
  /// the graph's placement steers the dispatch to a warm engine on that
  /// shard when one is idle; a hint outside [0, num_shards) is rejected at
  /// validation. Requests batch only with requests sharing their hint.
  uint32_t shard_hint = Placement::kNoShard;

  // --- SageFlood (DESIGN.md §11) ---

  /// Admission class. Under overload, lower classes (higher enum values)
  /// are shed first; dequeue order is weighted round-robin
  /// (ServeOptions::qos.weights). Requests coalesce only within a class.
  Priority priority = Priority::kInteractive;
  /// Billing principal for per-tenant quotas. Must be non-empty and at
  /// most qos.max_tenant_chars long (validated at Submit).
  std::string tenant = "default";
  /// Absolute wall deadline on the util::MonotonicSeconds() time base,
  /// 0 = none. Rejected at Submit if already in the past; checked again at
  /// dequeue, where an expired request sheds (kDeadlineExceeded,
  /// [shed=deadline_expired]) instead of burning a dispatch. Unlike the
  /// relative deadline_wall_seconds above, this one keeps counting while
  /// the request waits in the queue.
  double deadline_wall_until_seconds = 0.0;
};

/// Wall-clock span of one request through the service (SageScope). All
/// milliseconds. total_ms covers submit → response delivery; queue_wait_ms
/// is time spent in the admission queue before a dispatcher claimed the
/// request; coalesce_ms is dispatch setup (batch claim, breaker check,
/// engine acquisition — including waiting for a free warm engine);
/// run_ms is the engine-run segment across all attempts; backoff_ms is the
/// computed retry backoff (slept only in worker mode).
struct RequestTiming {
  double queue_wait_ms = 0.0;
  double coalesce_ms = 0.0;
  double run_ms = 0.0;
  double backoff_ms = 0.0;
  double total_ms = 0.0;
  uint32_t retries = 0;
  uint32_t resumes = 0;
};

/// The answer to one Request, delivered through its future.
struct Response {
  /// OK if the run completed; the error otherwise (fields below are then
  /// meaningless). Failures carry the request id and the fault site, e.g.
  /// "request 7 (bfs@web): transient kernel fault (kernel=12); run failed
  /// at iteration 3".
  util::Status status;
  /// Stats of the dispatch that served this request. A coalesced dispatch
  /// reports the same (shared) stats to every member — divide by
  /// batch_size for a per-request amortized cost. After a
  /// checkpoint-resumed retry, covers the resumed portion of the run.
  core::RunStats stats;
  /// apps::OutputDigest of this request's own result (for a BFS request
  /// served by a coalesced MS-BFS run: the digest of *its* instance's
  /// distances — bit-identical to running the request alone).
  uint64_t output_digest = 0;
  /// How many requests shared the dispatch (1 = ran alone).
  uint32_t batch_size = 1;
  /// Engine runs this dispatch took (1 = no retries).
  uint32_t attempts = 1;
  /// Where this request's wall time went (populated for every response,
  /// including failures).
  RequestTiming timing;
  /// Shard of the warm engine that served the dispatch
  /// (Placement::kNoShard if the request never reached an engine).
  uint32_t served_by_shard = Placement::kNoShard;
  /// Why the request was shed, if it was (SageFlood). kNone for served
  /// requests and non-shed failures. The same token appears verbatim in
  /// the status message as "[shed=<name>]".
  ShedReason shed_reason = ShedReason::kNone;
};

/// Monotonic service counters (see QueryService::stats).
struct ServiceStats {
  uint64_t submitted = 0;        ///< accepted into the queue
  uint64_t rejected = 0;         ///< queue-full refusals only (sheds and
                                 ///< quota denials are counted separately)
  uint64_t completed = 0;        ///< responses delivered
  uint64_t batches = 0;          ///< dispatches executed
  uint64_t coalesced = 0;        ///< requests served by a >1 dispatch
  uint64_t engines_created = 0;  ///< warm engines built across all graphs
  // --- SageGuard ---
  uint64_t retries = 0;            ///< re-attempts after retryable faults
  uint64_t resumes = 0;            ///< retries resumed from a checkpoint
  uint64_t checkpoint_fallbacks = 0;  ///< corrupt checkpoint → full rerun
  uint64_t batch_splits = 0;       ///< bisections isolating a poisoned member
  uint64_t breaker_opens = 0;      ///< breaker trips (incl. failed probes)
  uint64_t breaker_rejects = 0;    ///< requests failed fast by an open breaker
  uint64_t deadline_misses = 0;    ///< dispatches that exceeded a deadline
  uint64_t cancelled = 0;          ///< requests answered kAborted
  double backoff_ms = 0.0;         ///< total computed retry backoff
  uint32_t current_max_batch = 0;  ///< adaptive batch cap right now
  // --- SageShard ---
  uint64_t shard_replications = 0;  ///< hot-graph replicas added
  // --- SageFlood (indexed by Priority) ---
  std::array<uint64_t, kNumPriorities> submitted_by_class{};
  /// Responses delivered that were not shed — disjoint from shed_by_class,
  /// so submitted = completed + shed per class when nothing else fails.
  std::array<uint64_t, kNumPriorities> completed_by_class{};
  /// Requests shed by policy (priority eviction + deadline drops),
  /// per class. Disjoint from `rejected` and `quota_rejections`.
  std::array<uint64_t, kNumPriorities> shed_by_class{};
  uint64_t quota_rejections = 0;  ///< tenant token-bucket denials
  uint64_t deadline_drops = 0;    ///< shed at dequeue for a hopeless deadline
  // --- SageScope (request-latency distribution, util::Histogram-backed) ---
  uint64_t latency_samples = 0;    ///< responses folded into the histogram
  double latency_p50_ms = 0.0;     ///< submit → response percentiles
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_TYPES_H_
