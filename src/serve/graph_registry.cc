#include "serve/graph_registry.h"

#include "util/logging.h"

namespace sage::serve {

util::Status GraphRegistry::Add(const std::string& name, graph::Csr csr) {
  if (name.empty()) {
    return util::Status::InvalidArgument("graph name must be non-empty");
  }
  // Reject corrupt CSRs at the door (SageVet): a graph that fails
  // structural validation would poison every engine built from it, and the
  // failure would surface as a confusing traversal-time error instead of a
  // load-time one.
  if (util::Status valid = graph::ValidateCsr(csr); !valid.ok()) {
    return util::Status::InvalidArgument("graph '" + name +
                                         "' failed CSR validation: " +
                                         valid.message());
  }
  const uint64_t need = csr.MemoryBytes();
  bool evicted_once = false;
  for (;;) {
    uint64_t deficit = 0;
    PoolEvictor* evictor = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (graphs_.find(name) != graphs_.end()) {
        return util::Status::InvalidArgument("graph '" + name +
                                             "' already registered");
      }
      if (memory_budget_bytes_ == 0 ||
          tracked_bytes_ + need <= memory_budget_bytes_) {
        // The round-robin cursor is modular by construction; the invariant
        // that every primary placement lands in [0, num_shards) is cheap
        // enough to assert on every Add, forever.
        SAGE_CHECK(next_primary_ < num_shards_)
            << "round-robin primary cursor " << next_primary_
            << " out of range [0, " << num_shards_ << ")";
        Entry entry;
        entry.csr = std::move(csr);
        entry.csr_bytes = need;
        entry.placement.primary = next_primary_;
        entry.placement.shards = {next_primary_};
        graphs_.emplace(name, std::move(entry));
        tracked_bytes_ += need;
        next_primary_ = (next_primary_ + 1) % num_shards_;
        return util::Status::OK();
      }
      if (evictor_ == nullptr || evicted_once) {
        return util::Status::ResourceExhausted(
            "graph '" + name + "' does not fit the memory budget: " +
            std::to_string(tracked_bytes_) + " tracked + " +
            std::to_string(need) + " needed > " +
            std::to_string(memory_budget_bytes_) + " budget" +
            (evictor_ == nullptr ? " (no pool evictor attached)"
                                 : " (after pool eviction)"));
      }
      deficit = tracked_bytes_ + need - memory_budget_bytes_;
      evictor = evictor_;
    }
    // Outside the registry lock: the evictor takes the service lock and
    // calls back into NotePoolBytes (service -> registry is the one legal
    // lock order; holding mu_ here would invert it).
    evictor->ReleasePoolMemory(deficit);
    evicted_once = true;
  }
}

const graph::Csr* GraphRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : &it->second.csr;
}

Placement GraphRegistry::PlacementOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? Placement() : it->second.placement;
}

util::Status GraphRegistry::AddReplica(const std::string& name,
                                       uint32_t shard) {
  if (shard >= num_shards_) {
    return util::Status::InvalidArgument(
        "replica shard " + std::to_string(shard) + " out of range (" +
        std::to_string(num_shards_) + " shards)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return util::Status::NotFound("graph '" + name + "' not registered");
  }
  Placement& placement = it->second.placement;
  if (!placement.OnShard(shard)) placement.shards.push_back(shard);
  return util::Status::OK();
}

void GraphRegistry::set_memory_budget_bytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  memory_budget_bytes_ = bytes;
}

uint64_t GraphRegistry::memory_budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_budget_bytes_;
}

void GraphRegistry::set_evictor(PoolEvictor* evictor) {
  std::lock_guard<std::mutex> lock(mu_);
  evictor_ = evictor;
}

void GraphRegistry::ClearEvictor(PoolEvictor* evictor) {
  std::lock_guard<std::mutex> lock(mu_);
  if (evictor_ == evictor) evictor_ = nullptr;
}

void GraphRegistry::NotePoolBytes(const std::string& name, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) return;
  tracked_bytes_ -= it->second.pool_bytes;
  it->second.pool_bytes = bytes;
  tracked_bytes_ += bytes;
}

uint64_t GraphRegistry::tracked_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tracked_bytes_;
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) names.push_back(name);
  return names;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace sage::serve
