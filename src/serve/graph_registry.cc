#include "serve/graph_registry.h"

namespace sage::serve {

util::Status GraphRegistry::Add(const std::string& name, graph::Csr csr) {
  if (name.empty()) {
    return util::Status::InvalidArgument("graph name must be non-empty");
  }
  // Reject corrupt CSRs at the door (SageVet): a graph that fails
  // structural validation would poison every engine built from it, and the
  // failure would surface as a confusing traversal-time error instead of a
  // load-time one.
  if (util::Status valid = graph::ValidateCsr(csr); !valid.ok()) {
    return util::Status::InvalidArgument("graph '" + name +
                                         "' failed CSR validation: " +
                                         valid.message());
  }
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.csr = std::move(csr);
  entry.placement.primary = next_primary_;
  entry.placement.shards = {next_primary_};
  auto [it, inserted] = graphs_.emplace(name, std::move(entry));
  (void)it;
  if (!inserted) {
    return util::Status::InvalidArgument("graph '" + name +
                                         "' already registered");
  }
  next_primary_ = (next_primary_ + 1) % num_shards_;
  return util::Status::OK();
}

const graph::Csr* GraphRegistry::Find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : &it->second.csr;
}

Placement GraphRegistry::PlacementOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  return it == graphs_.end() ? Placement() : it->second.placement;
}

util::Status GraphRegistry::AddReplica(const std::string& name,
                                       uint32_t shard) {
  if (shard >= num_shards_) {
    return util::Status::InvalidArgument(
        "replica shard " + std::to_string(shard) + " out of range (" +
        std::to_string(num_shards_) + " shards)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = graphs_.find(name);
  if (it == graphs_.end()) {
    return util::Status::NotFound("graph '" + name + "' not registered");
  }
  Placement& placement = it->second.placement;
  if (!placement.OnShard(shard)) placement.shards.push_back(shard);
  return util::Status::OK();
}

std::vector<std::string> GraphRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(graphs_.size());
  for (const auto& [name, entry] : graphs_) names.push_back(name);
  return names;
}

size_t GraphRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace sage::serve
