#ifndef SAGE_SERVE_CIRCUIT_BREAKER_H_
#define SAGE_SERVE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <mutex>

namespace sage::serve {

/// Circuit-breaker knobs (one breaker per registered graph's engine pool).
struct BreakerOptions {
  /// false disables the breaker entirely (every dispatch is allowed).
  bool enabled = true;
  /// Consecutive infrastructure failures that trip the breaker open.
  uint32_t failure_threshold = 4;
  /// How long an open breaker cools before probing, measured in *service
  /// dispatches* rather than wall time: the dispatch counter is the
  /// service's deterministic clock, so breaker traces replay identically
  /// in tests (wall-time cooldowns would not).
  uint64_t cooldown_dispatches = 8;
};

/// A per-graph circuit breaker (SageGuard; DESIGN.md §7). Classic three
/// states:
///
///   closed    — requests flow; consecutive failures are counted.
///   open      — after `failure_threshold` consecutive failures every
///               dispatch is rejected up front (fail fast: no engine is
///               acquired, no retries burn), until `cooldown_dispatches`
///               service dispatches have passed.
///   half-open — exactly one probe dispatch is let through. Success closes
///               the breaker; failure re-opens it for another cooldown.
///
/// What counts as a failure is the caller's policy: QueryService feeds it
/// only infrastructure faults (kUnavailable after retries exhausted) —
/// per-request outcomes (kInternal poisoned inputs, kDeadlineExceeded,
/// kAborted) never open the breaker. They still resolve the dispatch,
/// though: every admitted dispatch must end in exactly one of
/// RecordSuccess / RecordFailure / RecordNeutral, or a half-open probe
/// slot leaks and the breaker rejects the graph forever.
///
/// Internally synchronized — dispatchers on different worker threads share
/// one breaker per graph.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerOptions options) : options_(options) {}

  /// Gate check, called with the service's monotonic dispatch counter.
  /// false = reject the dispatch up front. May transition open → half-open
  /// (claiming the probe slot for this caller).
  bool Allow(uint64_t dispatch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!options_.enabled) return true;
    switch (state_) {
      case State::kClosed:
        return true;
      case State::kOpen:
        if (dispatch >= opened_at_ + options_.cooldown_dispatches) {
          state_ = State::kHalfOpen;
          probe_in_flight_ = true;
          return true;
        }
        return false;
      case State::kHalfOpen:
        // One probe at a time; everyone else keeps failing fast.
        if (probe_in_flight_) return false;
        probe_in_flight_ = true;
        return true;
    }
    return true;
  }

  void RecordSuccess() {
    std::lock_guard<std::mutex> lock(mu_);
    // A success arriving while open is a slow dispatch admitted before the
    // trip: it predates the failures and must not bypass the cooldown and
    // half-open probe discipline.
    if (state_ == State::kOpen) return;
    consecutive_failures_ = 0;
    probe_in_flight_ = false;
    state_ = State::kClosed;
  }

  /// The dispatch resolved with a per-request outcome (poisoned input,
  /// deadline miss, cancellation) that says nothing about infrastructure
  /// health: frees a claimed half-open probe slot — the next dispatch
  /// probes again — without closing or re-opening the breaker, and leaves
  /// the closed-state failure count alone.
  void RecordNeutral() {
    std::lock_guard<std::mutex> lock(mu_);
    probe_in_flight_ = false;
  }

  void RecordFailure(uint64_t dispatch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!options_.enabled) return;
    if (state_ == State::kHalfOpen) {
      // The probe failed: back to cooling for another full window.
      probe_in_flight_ = false;
      state_ = State::kOpen;
      opened_at_ = dispatch;
      ++opens_;
      return;
    }
    if (state_ == State::kClosed &&
        ++consecutive_failures_ >= options_.failure_threshold) {
      state_ = State::kOpen;
      opened_at_ = dispatch;
      ++opens_;
    }
  }

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// How many times the breaker has tripped open (including re-opens after
  /// failed probes).
  uint64_t opens() const {
    std::lock_guard<std::mutex> lock(mu_);
    return opens_;
  }

 private:
  const BreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  uint32_t consecutive_failures_ = 0;
  uint64_t opened_at_ = 0;
  uint64_t opens_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace sage::serve

#endif  // SAGE_SERVE_CIRCUIT_BREAKER_H_
