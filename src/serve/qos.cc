#include "serve/qos.h"

namespace sage::serve {

const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

bool ParsePriority(const std::string& text, Priority* out) {
  if (text == "interactive") {
    *out = Priority::kInteractive;
  } else if (text == "batch") {
    *out = Priority::kBatch;
  } else if (text == "besteffort" || text == "best-effort" ||
             text == "best_effort") {
    *out = Priority::kBestEffort;
  } else {
    return false;
  }
  return true;
}

const char* ShedReasonName(ShedReason r) {
  switch (r) {
    case ShedReason::kNone:
      return "none";
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kPriorityEviction:
      return "priority_eviction";
    case ShedReason::kQuota:
      return "quota";
    case ShedReason::kDeadlineUnmeetable:
      return "deadline_unmeetable";
    case ShedReason::kDeadlineExpired:
      return "deadline_expired";
  }
  return "unknown";
}

QosPolicy::QosPolicy(const QosOptions& options) : options_(options) {
  for (int c = 0; c < kNumPriorities; ++c) credit_[c] = options_.weights[c];
}

QosPolicy::Admission QosPolicy::Admit(
    Priority priority, const std::string& tenant,
    const std::array<size_t, kNumPriorities>& depth, size_t max_pending) {
  ++tick_;
  if (options_.tenant_rate_per_tick > 0.0) {
    auto [it, inserted] = buckets_.try_emplace(
        tenant, options_.tenant_rate_per_tick, options_.tenant_burst);
    (void)inserted;
    if (!it->second.TryAcquire(tick_)) {
      return {false, ShedReason::kQuota, -1};
    }
  }
  size_t total = 0;
  for (size_t d : depth) total += d;
  if (total < max_pending) return {true, ShedReason::kNone, -1};
  // Full: make room by shedding from the cheapest-to-lose class that is
  // strictly less important than the newcomer. Equal-or-higher classes are
  // never evicted, so an interactive flood cannot starve other
  // interactive requests by churning the queue.
  for (int c = kNumPriorities - 1; c > static_cast<int>(priority); --c) {
    if (depth[c] > 0) return {true, ShedReason::kPriorityEviction, c};
  }
  return {false, ShedReason::kQueueFull, -1};
}

int QosPolicy::NextClass(const std::array<size_t, kNumPriorities>& depth) {
  bool any = false;
  for (size_t d : depth) any |= d > 0;
  if (!any) return -1;
  // Two credit passes: the first spends leftover credit, the second runs
  // after a refresh so a class that just exhausted its weight gets another
  // chance within the same call.
  for (int pass = 0; pass < 2; ++pass) {
    for (int c = 0; c < kNumPriorities; ++c) {
      if (depth[c] > 0 && credit_[c] > 0) {
        --credit_[c];
        return c;
      }
    }
    for (int c = 0; c < kNumPriorities; ++c) credit_[c] = options_.weights[c];
  }
  // Only weight-0 classes are non-empty: fall back to strict priority.
  for (int c = 0; c < kNumPriorities; ++c) {
    if (depth[c] > 0) return c;
  }
  return -1;
}

}  // namespace sage::serve
