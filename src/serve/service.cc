#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace sage::serve {

QueryService::QueryService(const GraphRegistry* registry,
                           ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      pool_(options_.worker_threads) {
  SAGE_CHECK(registry_ != nullptr);
  options_.engines_per_graph = std::max<uint32_t>(
      options_.engines_per_graph, 1);
  options_.max_batch = std::max<uint32_t>(options_.max_batch, 1);
  init_error_ = options_.engine_options.Validate();
  // Dispatch workers occupy the PR-2 pool's threads for the service's
  // lifetime; each loop exits when stopping_ is set and the queue drains.
  for (uint32_t i = 0; i < options_.worker_threads; ++i) {
    pool_.Submit([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

util::Status QueryService::ValidateRequest(const Request& request) const {
  if (!init_error_.ok()) return init_error_;
  if (registry_->Find(request.graph) == nullptr) {
    return util::Status::NotFound("unknown graph: " + request.graph);
  }
  if (!apps::AppKnown(request.app)) {
    return util::Status::InvalidArgument("unknown app: " + request.app);
  }
  const graph::Csr* csr = registry_->Find(request.graph);
  for (graph::NodeId s : request.params.sources) {
    if (s >= csr->num_nodes()) {
      return util::Status::InvalidArgument(
          request.app + ": source node " + std::to_string(s) +
          " out of range for graph " + request.graph);
    }
  }
  if ((request.app == "bfs" || request.app == "sssp") &&
      request.params.sources.size() != 1) {
    return util::Status::InvalidArgument(
        request.app + " takes exactly one source");
  }
  if (request.app == "msbfs" &&
      (request.params.sources.empty() ||
       request.params.sources.size() >
           apps::MultiSourceBfsProgram::kMaxSources)) {
    return util::Status::InvalidArgument("msbfs takes 1..64 sources");
  }
  return util::Status::OK();
}

util::StatusOr<std::future<Response>> QueryService::Submit(Request request) {
  SAGE_RETURN_IF_ERROR(ValidateRequest(request));
  std::future<Response> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return util::Status::FailedPrecondition("service is shut down");
    }
    if (queue_.size() >= options_.max_pending) {
      ++stats_.rejected;
      return util::Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_pending) +
          " pending); retry later");
    }
    Pending pending;
    pending.request = std::move(request);
    future = pending.promise.get_future();
    queue_.push_back(std::move(pending));
    ++stats_.submitted;
  }
  queue_cv_.notify_one();
  return future;
}

std::vector<QueryService::Pending> QueryService::TakeBatchLocked() {
  std::vector<Pending> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (!options_.batching) return batch;

  // Copy the leader's compatibility key: push_back below may reallocate
  // the batch vector, so a reference into it would dangle.
  const Request lead = batch.front().request;
  const bool bfs_coalesce = lead.app == "bfs";
  const bool dedupe = lead.app == "pagerank" || lead.app == "kcore";
  if (!bfs_coalesce && !dedupe) return batch;  // sssp / msbfs run alone

  size_t limit = options_.max_batch;
  if (bfs_coalesce) {
    limit = std::min<size_t>(limit, apps::MultiSourceBfsProgram::kMaxSources);
  }
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < limit;) {
    const Request& r = it->request;
    bool match = r.graph == lead.graph && r.app == lead.app;
    if (match && lead.app == "pagerank") {
      match = r.params.iterations == lead.params.iterations;
    } else if (match && lead.app == "kcore") {
      match = r.params.k == lead.params.k;
    }
    if (match) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

core::FilterProgram* QueryService::Program(WarmEngine* engine,
                                           const std::string& key,
                                           const std::string& app) {
  auto it = engine->programs.find(key);
  if (it != engine->programs.end()) return it->second.get();
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok()) << program.status().ToString();
  core::FilterProgram* raw = program->get();
  engine->programs.emplace(key, std::move(*program));
  return raw;
}

QueryService::WarmEngine* QueryService::AcquireEngine(
    const std::string& graph) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    GraphPool& pool = pools_[graph];
    for (auto& engine : pool.engines) {
      if (!engine->busy && engine->engine != nullptr) {
        engine->busy = true;
        return engine.get();
      }
    }
    if (pool.engines.size() < options_.engines_per_graph) {
      const graph::Csr* csr = registry_->Find(graph);
      SAGE_CHECK(csr != nullptr);  // validated at Submit
      auto warm = std::make_unique<WarmEngine>(options_.device_spec);
      warm->busy = true;  // claimed by this dispatcher while it builds
      WarmEngine* raw = warm.get();
      pool.engines.push_back(std::move(warm));
      ++stats_.engines_created;
      // Engine construction copies the CSR — do the expensive part
      // unlocked. The slot is marked busy, so no other dispatcher can
      // observe the half-built engine.
      lock.unlock();
      auto engine = core::Engine::Create(&raw->device, *csr,
                                         options_.engine_options);
      SAGE_CHECK(engine.ok()) << engine.status().ToString();  // pre-validated
      raw->engine = std::move(*engine);
      return raw;
    }
    // Pool at capacity and everything busy: wait for a release.
    engine_cv_.wait(lock);
  }
}

void QueryService::ReleaseEngine(WarmEngine* engine) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    engine->busy = false;
  }
  // notify_all: waiters for *other* graphs share the cv; a notify_one
  // could wake only a dispatcher whose pool is still saturated.
  engine_cv_.notify_all();
}

void QueryService::ExecuteBatch(std::vector<Pending> batch) {
  const Request& lead = batch.front().request;
  WarmEngine* warm = AcquireEngine(lead.graph);
  core::Engine& engine = *warm->engine;

  std::vector<Response> responses(batch.size());
  for (Response& r : responses) {
    r.batch_size = static_cast<uint32_t>(batch.size());
  }

  if (lead.app == "bfs" && batch.size() > 1) {
    // Coalesce N single-source BFS queries into one MS-BFS traversal.
    // Distance recording makes every instance's answer bit-identical to a
    // solo BfsProgram run (same sentinel, same level values). The recorder
    // gets its own program slot: recording switches MS-BFS into its strict
    // level-synchronous mode, which must not bleed into explicit msbfs
    // requests sharing the engine.
    auto* msbfs = static_cast<apps::MultiSourceBfsProgram*>(
        Program(warm, "bfs.batch", "msbfs"));
    msbfs->EnableDistanceRecording();
    apps::AppParams params;
    params.sources.reserve(batch.size());
    for (const Pending& p : batch) {
      params.sources.push_back(p.request.params.sources[0]);
    }
    auto stats = apps::RunApp(engine, *msbfs, params);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!stats.ok()) {
        responses[i].status = stats.status();
      } else {
        responses[i].stats = *stats;
        responses[i].output_digest = apps::MsBfsInstanceDigest(
            engine, *msbfs, static_cast<uint32_t>(i));
      }
    }
  } else {
    // Run once with the leader's params; duplicates (pagerank / kcore
    // dedupe groups) share the result.
    core::FilterProgram* program = Program(warm, lead.app, lead.app);
    auto stats = apps::RunApp(engine, *program, lead.params);
    uint64_t digest =
        stats.ok() ? apps::OutputDigest(engine, *program) : 0;
    for (Response& r : responses) {
      if (!stats.ok()) {
        r.status = stats.status();
      } else {
        r.stats = *stats;
        r.output_digest = digest;
      }
    }
  }

  ReleaseEngine(warm);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.completed += batch.size();
    if (batch.size() > 1) stats_.coalesced += batch.size();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(responses[i]));
  }
}

void QueryService::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch = TakeBatchLocked();
    }
    ExecuteBatch(std::move(batch));
  }
}

void QueryService::ProcessAllPending() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) return;
      batch = TakeBatchLocked();
    }
    ExecuteBatch(std::move(batch));
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  pool_.Drain();  // workers drain the queue, then exit
  // Synchronous mode (no workers) may leave requests queued; fail them
  // loudly rather than dropping their promises.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    Response response;
    response.status = util::Status::FailedPrecondition(
        "service shut down before the request ran");
    pending.promise.set_value(std::move(response));
  }
}

ServiceStats QueryService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace sage::serve
