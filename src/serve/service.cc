#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace sage::serve {

namespace {

/// Prefixes a failure with the request's identity so a client holding many
/// futures can tell which query died — and, since engine/injector messages
/// carry the fault site (kernel=..., iteration=...), where.
util::Status TagStatus(const util::Status& status, const Request& request) {
  if (status.ok()) return status;
  return util::Status(status.code(),
                      "request " + std::to_string(request.id) + " (" +
                          request.app + "@" + request.graph + "): " +
                          status.message());
}

/// Key of the modeled-cost estimate map: one entry per (graph, app) pair.
std::string CostKey(const Request& request) {
  return request.graph + '\n' + request.app;
}

int ClassOf(const Request& request) {
  return static_cast<int>(request.priority);
}

double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::max(std::chrono::duration<double, std::milli>(b - a).count(),
                  0.0);
}

/// Trace track ids: pid 0 is the service's wall-clock track (request spans
/// + dispatch slices, tid = warm-engine ordinal); each warm engine also
/// gets a modeled-time track at pid kEngineTracePidBase + id for its
/// kernel timeline.
constexpr uint32_t kEngineTracePidBase = 1000;

}  // namespace

QueryService::QueryService(GraphRegistry* registry, ServeOptions options)
    : registry_(registry),
      options_(std::move(options)),
      pool_(options_.worker_threads),
      qos_(options_.qos) {
  SAGE_CHECK(registry_ != nullptr);
  options_.engines_per_graph = std::max<uint32_t>(
      options_.engines_per_graph, 1);
  options_.max_batch = std::max<uint32_t>(options_.max_batch, 1);
  options_.retry.max_attempts = std::max<uint32_t>(
      options_.retry.max_attempts, 1);
  effective_max_batch_ = options_.max_batch;
  m_.submitted = metrics_.counter("serve.submitted");
  m_.rejected = metrics_.counter("serve.rejected");
  m_.completed = metrics_.counter("serve.completed");
  m_.batches = metrics_.counter("serve.batches");
  m_.coalesced = metrics_.counter("serve.coalesced");
  m_.engines_created = metrics_.counter("serve.engines_created");
  m_.retries = metrics_.counter("serve.retries");
  m_.resumes = metrics_.counter("serve.resumes");
  m_.checkpoint_fallbacks = metrics_.counter("serve.checkpoint_fallbacks");
  m_.batch_splits = metrics_.counter("serve.batch_splits");
  m_.breaker_opens = metrics_.counter("serve.breaker_opens");
  m_.breaker_rejects = metrics_.counter("serve.breaker_rejects");
  m_.deadline_misses = metrics_.counter("serve.deadline_misses");
  m_.cancelled = metrics_.counter("serve.cancelled");
  m_.shard_replications = metrics_.counter("serve.shard.replications");
  m_.cache_evictions = metrics_.counter("serve.cache.evictions");
  for (int c = 0; c < kNumPriorities; ++c) {
    const std::string name = PriorityName(static_cast<Priority>(c));
    m_.submitted_by_class[c] = metrics_.counter("serve.submitted." + name);
    m_.completed_by_class[c] = metrics_.counter("serve.completed." + name);
    m_.shed_by_class[c] = metrics_.counter("serve.shed." + name);
  }
  m_.quota_rejections = metrics_.counter("serve.quota_rejections");
  m_.deadline_drops = metrics_.counter("serve.deadline_drops");
  m_.backoff_ms = metrics_.gauge("serve.backoff_ms");
  m_shard_dispatches_.reserve(registry_->num_shards());
  for (uint32_t i = 0; i < registry_->num_shards(); ++i) {
    m_shard_dispatches_.push_back(
        metrics_.counter("serve.shard.dispatches." + std::to_string(i)));
  }
  m_shard_imbalance_ = metrics_.gauge("serve.shard.imbalance");
  m_.latency_total_us = metrics_.histogram("serve.latency_total_us");
  m_.latency_queue_us = metrics_.histogram("serve.latency_queue_us");
  m_.latency_run_us = metrics_.histogram("serve.latency_run_us");
  if (options_.trace != nullptr) {
    options_.trace->Add(util::ProcessNameEvent(0, "sage-serve (wall)"));
  }
  init_error_ = options_.engine_options.Validate();
  if (init_error_.ok() && !options_.fault_spec.empty()) {
    auto spec = sim::ParseFaultSpec(options_.fault_spec);
    if (spec.ok()) {
      fault_spec_ = std::move(*spec);
    } else {
      init_error_ = spec.status();
    }
  }
  // Dispatch workers occupy the PR-2 pool's threads for the service's
  // lifetime; each loop exits when stopping_ is set and the queue drains.
  for (uint32_t i = 0; i < options_.worker_threads; ++i) {
    pool_.Submit([this] { WorkerLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

util::Status QueryService::ValidateRequest(const Request& request) const {
  if (!init_error_.ok()) return init_error_;
  if (registry_->Find(request.graph) == nullptr) {
    return util::Status::NotFound("unknown graph: " + request.graph);
  }
  if (!apps::AppKnown(request.app)) {
    return util::Status::InvalidArgument("unknown app: " + request.app);
  }
  SAGE_RETURN_IF_ERROR(VetForAdmission(request.app));
  const graph::Csr* csr = registry_->Find(request.graph);
  for (graph::NodeId s : request.params.sources) {
    if (s >= csr->num_nodes()) {
      return util::Status::InvalidArgument(
          request.app + ": source node " + std::to_string(s) +
          " out of range for graph " + request.graph);
    }
  }
  if ((request.app == "bfs" || request.app == "sssp") &&
      request.params.sources.size() != 1) {
    return util::Status::InvalidArgument(
        request.app + " takes exactly one source");
  }
  if (request.app == "msbfs" &&
      (request.params.sources.empty() ||
       request.params.sources.size() >
           apps::MultiSourceBfsProgram::kMaxSources)) {
    return util::Status::InvalidArgument("msbfs takes 1..64 sources");
  }
  if (request.deadline_modeled_seconds < 0.0 ||
      request.deadline_wall_seconds < 0.0 ||
      request.deadline_wall_until_seconds < 0.0) {
    return util::Status::InvalidArgument("deadlines must be >= 0");
  }
  if (request.deadline_wall_until_seconds > 0.0 &&
      request.deadline_wall_until_seconds <= util::MonotonicSeconds()) {
    return util::Status::InvalidArgument(
        "deadline already expired (deadline_wall_until_seconds is in the "
        "past)");
  }
  if (static_cast<int>(request.priority) >= kNumPriorities) {
    return util::Status::InvalidArgument(
        "unknown priority " +
        std::to_string(static_cast<int>(request.priority)) +
        " (valid: interactive=0, batch=1, best_effort=2)");
  }
  if (request.tenant.empty()) {
    return util::Status::InvalidArgument("tenant id must be non-empty");
  }
  if (request.tenant.size() > options_.qos.max_tenant_chars) {
    return util::Status::InvalidArgument(
        "tenant id too long (" + std::to_string(request.tenant.size()) +
        " chars; max " + std::to_string(options_.qos.max_tenant_chars) + ")");
  }
  if (request.shard_hint != Placement::kNoShard &&
      request.shard_hint >= registry_->num_shards()) {
    return util::Status::InvalidArgument(
        "shard hint " + std::to_string(request.shard_hint) +
        " out of range (" + std::to_string(registry_->num_shards()) +
        " shards)");
  }
  return util::Status::OK();
}

util::Status QueryService::VetForAdmission(const std::string& app) const {
  const check::VetLevel level = options_.engine_options.vet_level;
  if (level == check::VetLevel::kOff) return util::Status::OK();
  std::lock_guard<std::mutex> lock(vet_mu_);
  auto it = vet_cache_.find(app);
  if (it != vet_cache_.end()) return it->second;
  // First request for this app: vet a throwaway program instance on the
  // canonical probe graph. The verdict is cached — programs are static, so
  // one pre-flight per service lifetime is the whole admission price.
  util::Status verdict;
  auto report = apps::VetApp(app, level, options_.engine_options);
  if (!report.ok()) {
    verdict = report.status();
  } else {
    verdict = report->ToStatus();
  }
  if (!verdict.ok()) {
    verdict = util::Status(verdict.code(),
                           "app '" + app + "' failed pre-flight vetting: " +
                               verdict.message());
  }
  vet_cache_.emplace(app, verdict);
  return verdict;
}

util::StatusOr<std::future<Response>> QueryService::Submit(Request request) {
  SAGE_RETURN_IF_ERROR(ValidateRequest(request));
  std::future<Response> future;
  // A priority eviction resolves the victim's promise outside mu_ (promise
  // continuations may re-enter the service).
  Pending victim;
  bool have_victim = false;
  Clock::time_point now;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return util::Status::FailedPrecondition("service is shut down");
    }
    const int cls = ClassOf(request);
    std::array<size_t, kNumPriorities> depth;
    for (int c = 0; c < kNumPriorities; ++c) depth[c] = queues_[c].size();
    const QosPolicy::Admission verdict = qos_.Admit(
        request.priority, request.tenant, depth, options_.max_pending);
    if (!verdict.admit) {
      if (verdict.reason == ShedReason::kQuota) {
        m_.quota_rejections->Add(1);
        return util::Status::ResourceExhausted(
            "[shed=quota] tenant '" + request.tenant +
            "' over its admission quota; retry later");
      }
      m_.rejected->Add(1);
      return util::Status::ResourceExhausted(
          "[shed=queue_full] admission queue full (" +
          std::to_string(options_.max_pending) +
          " pending, nothing lower-priority to evict); retry later");
    }
    now = Clock::now();
    if (verdict.evict >= 0) {
      // Make room by shedding the newest queued request of the chosen
      // (strictly lower) class — newest, so the oldest waiters keep their
      // positions and FIFO fairness within the class survives overload.
      std::deque<Pending>& q = queues_[verdict.evict];
      SAGE_CHECK(!q.empty());
      victim = std::move(q.back());
      q.pop_back();
      have_victim = true;
    }
    Pending pending;
    pending.request = std::move(request);
    pending.submitted_at = now;
    pending.span_id = span_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    future = pending.promise.get_future();
    if (util::TraceLog* trace = options_.trace) {
      util::TraceEvent e;
      e.name = pending.request.app;
      e.cat = "request";
      e.ph = 'b';
      e.ts_us = trace->NowUs();
      e.id = pending.span_id;
      e.ArgStr("graph", pending.request.graph)
          .ArgU64("request_id", pending.request.id)
          .ArgStr("priority", PriorityName(pending.request.priority))
          .ArgStr("tenant", pending.request.tenant);
      trace->Add(std::move(e));
    }
    queues_[cls].push_back(std::move(pending));
    m_.submitted->Add(1);
    m_.submitted_by_class[cls]->Add(1);
  }
  if (have_victim) {
    ResolveShed(std::move(victim), ShedReason::kPriorityEviction, now);
  }
  queue_cv_.notify_one();
  return future;
}

void QueryService::ResolveShed(Pending pending, ShedReason reason,
                               Clock::time_point taken_at) {
  const int cls = ClassOf(pending.request);
  m_.shed_by_class[cls]->Add(1);
  const bool deadline = reason == ShedReason::kDeadlineExpired ||
                        reason == ShedReason::kDeadlineUnmeetable;
  if (deadline) m_.deadline_drops->Add(1);
  const std::string tag = std::string("[shed=") + ShedReasonName(reason) + "] ";
  Response r;
  r.shed_reason = reason;
  r.status = TagStatus(
      deadline
          ? util::Status::DeadlineExceeded(
                tag + (reason == ShedReason::kDeadlineExpired
                           ? "wall deadline passed while queued"
                           : "modeled cost exceeds the modeled deadline; "
                             "dropped without dispatch"))
          : util::Status::ResourceExhausted(
                tag + "evicted from the queue for a higher-priority request"),
      pending.request);
  Resolve(std::move(pending), std::move(r), taken_at, 0.0, 0.0);
}

ShedReason QueryService::DequeueShedReasonLocked(
    const Request& request) const {
  if (request.deadline_wall_until_seconds > 0.0 &&
      util::MonotonicSeconds() >= request.deadline_wall_until_seconds) {
    return ShedReason::kDeadlineExpired;
  }
  if (request.deadline_modeled_seconds > 0.0) {
    auto it = cost_estimate_.find(CostKey(request));
    if (it != cost_estimate_.end() &&
        it->second > request.deadline_modeled_seconds) {
      // The last clean dispatch of this graph+app cost more modeled time
      // than this request's whole budget — dispatching it would burn an
      // engine run just to miss. Modeled time is deterministic, so this
      // decision replays identically across thread counts.
      return ShedReason::kDeadlineUnmeetable;
    }
  }
  return ShedReason::kNone;
}

QueryService::Taken QueryService::TakeBatchLocked() {
  Taken taken;
  taken.taken_at = Clock::now();
  std::array<size_t, kNumPriorities> depth;
  for (int c = 0; c < kNumPriorities; ++c) depth[c] = queues_[c].size();
  const int cls = qos_.NextClass(depth);
  if (cls < 0) return taken;
  std::deque<Pending>& queue = queues_[cls];

  // Pop a leader, shedding hopeless-deadline requests as they surface.
  while (!queue.empty()) {
    ShedReason reason = DequeueShedReasonLocked(queue.front().request);
    if (reason == ShedReason::kNone) break;
    taken.shed.push_back(std::move(queue.front()));
    taken.shed_reasons.push_back(reason);
    queue.pop_front();
  }
  if (queue.empty()) return taken;  // every candidate shed
  taken.batch.push_back(std::move(queue.front()));
  queue.pop_front();
  if (!options_.batching) return taken;

  // Copy the leader's compatibility key: push_back below may reallocate
  // the batch vector, so a reference into it would dangle.
  const Request lead = taken.batch.front().request;
  const bool bfs_coalesce = lead.app == "bfs";
  const bool dedupe = lead.app == "pagerank" || lead.app == "kcore";
  if (!bfs_coalesce && !dedupe) return taken;  // sssp / msbfs run alone

  // The adaptive cap: deadline misses shrink it, clean dispatches grow it
  // back toward options_.max_batch (see ExecuteBatch). Coalescing stays
  // within the leader's class — one dispatch, one priority.
  size_t limit = effective_max_batch_;
  if (bfs_coalesce) {
    limit = std::min<size_t>(limit, apps::MultiSourceBfsProgram::kMaxSources);
  }
  for (auto it = queue.begin();
       it != queue.end() && taken.batch.size() < limit;) {
    const Request& r = it->request;
    // shard_hint is part of the compatibility key: members of one dispatch
    // share an engine, so they must agree on where it should run.
    bool match = r.graph == lead.graph && r.app == lead.app &&
                 r.shard_hint == lead.shard_hint;
    if (match && lead.app == "pagerank") {
      match = r.params.iterations == lead.params.iterations;
    } else if (match && lead.app == "kcore") {
      match = r.params.k == lead.params.k;
    }
    if (!match) {
      ++it;
      continue;
    }
    // A claimed member with a hopeless deadline sheds here instead of
    // riding along just to miss.
    ShedReason reason = DequeueShedReasonLocked(r);
    if (reason != ShedReason::kNone) {
      taken.shed.push_back(std::move(*it));
      taken.shed_reasons.push_back(reason);
    } else {
      taken.batch.push_back(std::move(*it));
    }
    it = queue.erase(it);
  }
  return taken;
}

core::FilterProgram* QueryService::Program(WarmEngine* engine,
                                           const std::string& key,
                                           const std::string& app) {
  auto it = engine->programs.find(key);
  if (it != engine->programs.end()) return it->second.get();
  auto program = apps::CreateProgram(app);
  SAGE_CHECK(program.ok()) << program.status().ToString();
  core::FilterProgram* raw = program->get();
  engine->programs.emplace(key, std::move(*program));
  return raw;
}

QueryService::WarmEngine* QueryService::AcquireEngine(
    const std::string& graph, uint32_t shard_hint) {
  // A copy outside the lock: placements only grow, and routing against a
  // slightly stale one is still correct (just possibly less spread out).
  const Placement placement = registry_->PlacementOf(graph);
  const bool hinted =
      shard_hint != Placement::kNoShard && placement.OnShard(shard_hint);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    GraphPool& pool = pools_[graph];
    // Recency stamp for SageCache eviction ordering: every acquisition
    // (including retries after a wait) marks this pool as the most
    // recently dispatched.
    pool.last_dispatch = ++lru_clock_;
    // First pass honors the hint; second takes any idle engine. A hint is
    // a preference, not an isolation guarantee — correctness never depends
    // on which shard serves (warm state cannot change answers). While the
    // pool has room, a hinted request with no idle engine on its shard
    // grows the pool there instead of borrowing a foreign idle engine, so
    // warm capacity lands where the traffic points.
    const bool can_grow = pool.engines.size() < options_.engines_per_graph;
    const int last_pass = hinted && can_grow ? 1 : 2;
    for (int pass = hinted ? 0 : 1; pass < last_pass; ++pass) {
      for (auto& engine : pool.engines) {
        if (!engine->busy && engine->engine != nullptr &&
            (pass == 1 || engine->shard == shard_hint)) {
          engine->busy = true;
          return engine.get();
        }
      }
    }
    if (can_grow) {
      const graph::Csr* csr = registry_->Find(graph);
      SAGE_CHECK(csr != nullptr);  // validated at Submit
      auto warm = std::make_unique<WarmEngine>(options_.device_spec);
      warm->busy = true;  // claimed by this dispatcher while it builds
      WarmEngine* raw = warm.get();
      raw->id = static_cast<uint32_t>(m_.engines_created->value());
      // New engines rotate across the graph's placement so replicas get
      // warm capacity; a valid hint pins the new engine to its shard.
      raw->shard = hinted ? shard_hint
                          : placement.shards[pool.engines.size() %
                                             placement.shards.size()];
      pool.engines.push_back(std::move(warm));
      m_.engines_created->Add(1);
      // SageCache accounting: each warm engine copies the CSR, so the
      // pool's footprint is engines * csr bytes. Reported under mu_ —
      // service -> registry is the one legal lock order.
      registry_->NotePoolBytes(
          graph, uint64_t{pool.engines.size()} * csr->MemoryBytes());
      // Engine construction copies the CSR — do the expensive part
      // unlocked. The slot is marked busy, so no other dispatcher can
      // observe the half-built engine.
      lock.unlock();
      auto engine = core::Engine::Create(&raw->device, *csr,
                                         options_.engine_options);
      SAGE_CHECK(engine.ok()) << engine.status().ToString();  // pre-validated
      raw->engine = std::move(*engine);
      if (!fault_spec_.empty()) {
        // Installed after Create so construction-time buffer grows are not
        // fault targets; each warm engine draws its own deterministic
        // schedule from the shared spec.
        raw->injector = std::make_unique<sim::FaultInjector>(fault_spec_);
        raw->device.set_fault_injector(raw->injector.get());
      }
      if (util::TraceLog* trace = options_.trace) {
        // Kernel timelines are only collected while a trace sink is
        // attached; enabled post-Create so construction kernels don't
        // pollute the first dispatch's slice.
        raw->device.set_timeline_enabled(true);
        trace->Add(util::ProcessNameEvent(
            kEngineTracePidBase + raw->id,
            "engine " + graph + "#" + std::to_string(raw->id) +
                " (modeled time)"));
      }
      return raw;
    }
    // Pool at capacity and everything busy: wait for a release.
    engine_cv_.wait(lock);
  }
}

uint64_t QueryService::ReleasePoolMemory(uint64_t bytes_needed) {
  uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Coldest pools first, name-tiebroken so the victim order is
    // deterministic even before any dispatch has stamped a recency.
    std::vector<std::pair<uint64_t, const std::string*>> order;
    order.reserve(pools_.size());
    for (const auto& [name, pool] : pools_) {
      if (!pool.engines.empty()) order.emplace_back(pool.last_dispatch, &name);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) {
                return a.first != b.first ? a.first < b.first
                                          : *a.second < *b.second;
              });
    for (const auto& [stamp, name] : order) {
      if (freed >= bytes_needed) break;
      const graph::Csr* csr = registry_->Find(*name);
      const uint64_t per_engine = csr != nullptr ? csr->MemoryBytes() : 0;
      GraphPool& pool = pools_[*name];
      auto& engines = pool.engines;
      // Only idle, fully built engines are victims: busy slots belong to an
      // in-flight dispatch (possibly still constructing the engine), and
      // erasing unique_ptrs never moves the WarmEngine objects other
      // dispatchers hold raw pointers to.
      for (auto it = engines.begin();
           it != engines.end() && freed < bytes_needed;) {
        if ((*it)->busy || (*it)->engine == nullptr) {
          ++it;
          continue;
        }
        it = engines.erase(it);
        freed += per_engine;
        m_.cache_evictions->Add(1);
      }
      registry_->NotePoolBytes(*name,
                               uint64_t{engines.size()} * per_engine);
    }
  }
  // Waiters blocked on a saturated pool can now grow it again.
  engine_cv_.notify_all();
  return freed;
}

void QueryService::ReleaseEngine(WarmEngine* engine) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    engine->busy = false;
  }
  // notify_all: waiters for *other* graphs share the cv; a notify_one
  // could wake only a dispatcher whose pool is still saturated.
  engine_cv_.notify_all();
}

CircuitBreaker* QueryService::BreakerFor(const std::string& graph) {
  std::lock_guard<std::mutex> lock(mu_);
  GraphPool& pool = pools_[graph];
  if (pool.breaker == nullptr) {
    pool.breaker = std::make_unique<CircuitBreaker>(options_.breaker);
  }
  return pool.breaker.get();
}

double QueryService::RetryBackoff(uint64_t request_id, uint32_t attempt) {
  const RetryOptions& retry = options_.retry;
  double base = retry.backoff_base_ms *
                static_cast<double>(uint64_t{1} << std::min(attempt, 30u));
  base = std::min(base, retry.backoff_max_ms);
  // Deterministic jitter in [0.5, 1.0) of the exponential step: replayable
  // given (seed, request id, attempt), decorrelated across requests.
  uint64_t h = util::SplitMix64(retry.jitter_seed ^ request_id ^
                                (attempt * 0x9e3779b97f4a7c15ull));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  double delay_ms = base * (0.5 + 0.5 * u);
  m_.backoff_ms->Add(delay_ms);
  // Only worker mode actually sleeps; synchronous (ProcessAllPending)
  // dispatch stays instant so tests are fast and deterministic.
  if (options_.worker_threads > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(delay_ms));
  }
  return delay_ms;
}

QueryService::DispatchOutcome QueryService::RunOnEngine(
    WarmEngine* warm, const Request& lead,
    const std::vector<Pending>& batch) {
  core::Engine& engine = *warm->engine;
  DispatchOutcome out;

  const bool bfs_batch = lead.app == "bfs" && batch.size() > 1;
  apps::AppParams params = lead.params;
  core::FilterProgram* program = nullptr;
  apps::MultiSourceBfsProgram* msbfs = nullptr;
  if (bfs_batch) {
    // Coalesce N single-source BFS queries into one MS-BFS traversal.
    // Distance recording makes every instance's answer bit-identical to a
    // solo BfsProgram run (same sentinel, same level values). The recorder
    // gets its own program slot: recording switches MS-BFS into its strict
    // level-synchronous mode, which must not bleed into explicit msbfs
    // requests sharing the engine.
    msbfs = static_cast<apps::MultiSourceBfsProgram*>(
        Program(warm, "bfs.batch", "msbfs"));
    msbfs->EnableDistanceRecording();
    params = apps::AppParams();
    params.sources.reserve(batch.size());
    for (const Pending& p : batch) {
      params.sources.push_back(p.request.params.sources[0]);
    }
    program = msbfs;
  } else {
    program = Program(warm, lead.app, lead.app);
  }

  // Per-dispatch guard: the tightest member deadlines; mid-run cancellation
  // only for solo dispatches (the engine takes one token, and coalesced
  // members are swept at dispatch boundaries instead).
  core::MemoryCheckpointSink sink;
  core::RunGuard guard;
  if (batch.size() == 1) guard.cancel = lead.cancel.get();
  for (const Pending& p : batch) {
    double m = p.request.deadline_modeled_seconds;
    double w = p.request.deadline_wall_seconds;
    if (m > 0.0 && (guard.deadline_modeled_seconds == 0.0 ||
                    m < guard.deadline_modeled_seconds)) {
      guard.deadline_modeled_seconds = m;
    }
    if (w > 0.0 && (guard.deadline_wall_seconds == 0.0 ||
                    w < guard.deadline_wall_seconds)) {
      guard.deadline_wall_seconds = w;
    }
    // Absolute wall deadlines pin the guard's until-field directly (it
    // wins over the relative duration): the clock kept running while the
    // request queued, and the engine must honor what is left of it.
    double until = p.request.deadline_wall_until_seconds;
    if (until > 0.0 && (guard.deadline_wall_until_seconds == 0.0 ||
                        until < guard.deadline_wall_until_seconds)) {
      guard.deadline_wall_until_seconds = until;
    }
  }
  if (options_.checkpoint_interval > 0) {
    guard.checkpoint_sink = &sink;
    guard.checkpoint_interval = options_.checkpoint_interval;
  }
  engine.set_run_guard(guard);

  uint32_t attempt = 0;
  util::StatusOr<core::RunStats> stats = apps::RunApp(engine, *program, params);
  while (!stats.ok() &&
         stats.status().code() == util::StatusCode::kUnavailable &&
         attempt + 1 < options_.retry.max_attempts) {
    ++attempt;
    ++out.retries;
    out.backoff_ms += RetryBackoff(lead.id, attempt);
    if (sink.has()) {
      // Resume from the last good iteration instead of redoing the work.
      auto resumed = apps::ResumeApp(engine, *program, sink.latest(), params);
      const util::StatusCode code =
          resumed.ok() ? util::StatusCode::kOk : resumed.status().code();
      if (code == util::StatusCode::kCorruption ||
          code == util::StatusCode::kFailedPrecondition ||
          code == util::StatusCode::kInvalidArgument) {
        // The checkpoint is unusable — damaged (digest mismatch), taken in
        // an internal-id epoch a relabeling has since invalidated, or
        // rejected by the program's RestoreState. Those are Engine::Resume
        // pre-run failures, not run outcomes: discard the checkpoint and
        // rerun from scratch — RunApp fully resets per-run state.
        sink.Clear();
        ++out.checkpoint_fallbacks;
        stats = apps::RunApp(engine, *program, params);
      } else {
        ++out.resumes;
        stats = std::move(resumed);
      }
    } else {
      stats = apps::RunApp(engine, *program, params);
    }
  }
  out.attempts = attempt + 1;
  // Clear the guard before the engine goes back to the pool: the sink is a
  // stack local, and the next dispatch installs its own.
  engine.set_run_guard(core::RunGuard());

  out.status = stats.status();
  if (stats.ok()) {
    out.stats = *stats;
    out.digests.resize(batch.size());
    if (bfs_batch) {
      for (size_t i = 0; i < batch.size(); ++i) {
        out.digests[i] = apps::MsBfsInstanceDigest(
            engine, *msbfs, static_cast<uint32_t>(i));
      }
    } else {
      // Duplicates (pagerank / kcore dedupe groups) share one result.
      uint64_t digest = apps::OutputDigest(engine, *program);
      for (uint64_t& d : out.digests) d = digest;
    }
  }
  return out;
}

void QueryService::ExecuteBatch(std::vector<Pending> batch) {
  const uint64_t dispatch =
      dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const Clock::time_point taken_at = Clock::now();

  // Requests cancelled while queued drop out before any engine work.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.request.cancel != nullptr && p.request.cancel->cancelled()) {
      Response r;
      r.status = TagStatus(
          util::Status::Aborted("cancelled before dispatch"), p.request);
      m_.cancelled->Add(1);
      Resolve(std::move(p), std::move(r), taken_at, 0.0, 0.0);
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;
  batch = std::move(live);

  // Copy, not reference: the batch vector is moved around below.
  const Request lead = batch.front().request;

  // Fail fast while the graph's breaker is open — no engine is acquired,
  // no retries burn, and the pool stays free for healthy graphs.
  CircuitBreaker* breaker = BreakerFor(lead.graph);
  if (!breaker->Allow(dispatch)) {
    m_.breaker_rejects->Add(batch.size());
    for (Pending& p : batch) {
      Response r;
      r.status = TagStatus(
          util::Status::Unavailable("circuit breaker open for graph '" +
                                    lead.graph + "'; retry after cooldown"),
          p.request);
      Resolve(std::move(p), std::move(r), taken_at,
              MsBetween(taken_at, Clock::now()), 0.0);
    }
    return;
  }

  WarmEngine* warm = AcquireEngine(lead.graph, lead.shard_hint);
  const uint32_t served_shard = warm->shard;
  const Clock::time_point run_start = Clock::now();
  const double setup_ms = MsBetween(taken_at, run_start);
  size_t kernel_base = 0;
  double trace_run_start_us = 0.0;
  if (options_.trace != nullptr) {
    kernel_base = warm->device.totals().kernel_records.size();
    trace_run_start_us = options_.trace->NowUs();
  }
  DispatchOutcome out = RunOnEngine(warm, lead, batch);
  const double run_ms = MsBetween(run_start, Clock::now());
  if (options_.trace != nullptr) {
    EmitDispatchTrace(warm, lead, batch.size(), dispatch, out,
                      trace_run_start_us, kernel_base);
  }
  ReleaseEngine(warm);
  RecordShardDispatch(lead.graph, served_shard);

  // The breaker watches infrastructure health: only retryable faults that
  // survived every retry (kUnavailable) count. Per-request outcomes —
  // poisoned inputs (kInternal), deadline misses, cancellations — say
  // nothing about the graph's engines and must not open the breaker: a
  // bisection chasing one poisoned source produces a run of kInternal
  // failures, and counting those would fail the healthy members the
  // split exists to save.
  if (out.status.ok()) {
    breaker->RecordSuccess();
  } else if (out.status.code() == util::StatusCode::kUnavailable) {
    uint64_t opens_before = breaker->opens();
    breaker->RecordFailure(dispatch);
    if (breaker->opens() > opens_before) m_.breaker_opens->Add(1);
  } else {
    // Per-request outcome: must not open (or close) the breaker, but must
    // still resolve the dispatch — if this was the half-open probe, the
    // slot has to be freed or Allow() rejects the graph forever (including
    // the bisection halves of a poisoned probe batch below).
    breaker->RecordNeutral();
  }

  // A permanent failure of a coalesced batch is bisected: one poisoned
  // BFS source must not fail the other members. Each half re-dispatches
  // through the full guard path until the bad member runs (and fails)
  // alone. log2(64) = 6 levels deep at worst.
  if (!out.status.ok() &&
      out.status.code() == util::StatusCode::kInternal && batch.size() > 1) {
    m_.batch_splits->Add(1);
    m_.batches->Add(1);
    size_t mid = batch.size() / 2;
    std::vector<Pending> right;
    right.reserve(batch.size() - mid);
    for (size_t i = mid; i < batch.size(); ++i) {
      right.push_back(std::move(batch[i]));
    }
    batch.resize(mid);
    ExecuteBatch(std::move(batch));
    ExecuteBatch(std::move(right));
    return;
  }

  m_.batches->Add(1);
  if (batch.size() > 1) m_.coalesced->Add(batch.size());
  m_.retries->Add(out.retries);
  m_.resumes->Add(out.resumes);
  m_.checkpoint_fallbacks->Add(out.checkpoint_fallbacks);
  if (out.status.ok()) {
    // Feed the deadline-infeasibility estimator: the modeled cost of the
    // last clean dispatch of this graph+app. Only clean runs count — a
    // deadline-tripped run's partial cost would understate the estimate.
    std::lock_guard<std::mutex> lock(mu_);
    cost_estimate_[CostKey(lead)] = out.stats.seconds;
  }
  if (!out.status.ok() &&
      out.status.code() == util::StatusCode::kDeadlineExceeded) {
    m_.deadline_misses->Add(1);
    if (options_.adaptive_batch) {
      // Multiplicative decrease: the next batches are half the size, so
      // they fit tighter deadlines.
      std::lock_guard<std::mutex> lock(mu_);
      effective_max_batch_ = std::max<uint32_t>(effective_max_batch_ / 2, 1);
    }
  } else if (out.status.ok() && options_.adaptive_batch) {
    std::lock_guard<std::mutex> lock(mu_);
    if (effective_max_batch_ < options_.max_batch) {
      ++effective_max_batch_;  // additive recovery
    }
  }
  if (!out.status.ok() && out.status.code() == util::StatusCode::kAborted) {
    m_.cancelled->Add(batch.size());  // mid-run cooperative cancel
  }

  for (size_t i = 0; i < batch.size(); ++i) {
    Response r;
    r.batch_size = static_cast<uint32_t>(batch.size());
    r.attempts = out.attempts;
    r.served_by_shard = served_shard;
    r.timing.backoff_ms = out.backoff_ms;
    r.timing.retries = out.retries;
    r.timing.resumes = out.resumes;
    if (out.status.ok()) {
      r.stats = out.stats;
      r.output_digest = out.digests[i];
    } else {
      r.status = TagStatus(out.status, batch[i].request);
    }
    Resolve(std::move(batch[i]), std::move(r), taken_at, setup_ms, run_ms);
  }
}

void QueryService::Resolve(Pending pending, Response response,
                           Clock::time_point taken_at, double setup_ms,
                           double run_ms) {
  RequestTiming& t = response.timing;
  t.queue_wait_ms = MsBetween(pending.submitted_at, taken_at);
  t.coalesce_ms = setup_ms;
  t.run_ms = run_ms;
  t.total_ms = MsBetween(pending.submitted_at, Clock::now());
  m_.latency_total_us->Add(static_cast<uint64_t>(t.total_ms * 1e3));
  m_.latency_queue_us->Add(static_cast<uint64_t>(t.queue_wait_ms * 1e3));
  m_.latency_run_us->Add(static_cast<uint64_t>(t.run_ms * 1e3));
  m_.completed->Add(1);
  // Shed responses are accounted in shed_by_class (inside ResolveShed);
  // the two per-class counters stay disjoint so submitted = completed +
  // shed holds per class when nothing else fails.
  if (response.shed_reason == ShedReason::kNone) {
    m_.completed_by_class[ClassOf(pending.request)]->Add(1);
  }
  if (util::TraceLog* trace = options_.trace) {
    util::TraceEvent e;
    e.name = pending.request.app;
    e.cat = "request";
    e.ph = 'e';
    e.ts_us = trace->NowUs();
    e.id = pending.span_id;
    e.ArgStr("status", util::StatusCodeToString(response.status.code()))
        .ArgU64("batch_size", response.batch_size)
        .ArgF("total_ms", t.total_ms);
    trace->Add(std::move(e));
  }
  pending.promise.set_value(std::move(response));
}

void QueryService::EmitDispatchTrace(WarmEngine* warm, const Request& lead,
                                     size_t batch_size, uint64_t dispatch,
                                     const DispatchOutcome& out,
                                     double start_us, size_t kernel_base) {
  util::TraceLog* trace = options_.trace;
  util::TraceEvent e;
  e.name = lead.app;
  e.cat = "dispatch";
  e.ph = 'X';
  e.ts_us = start_us;
  e.dur_us = std::max(trace->NowUs() - start_us, 0.0);
  e.pid = 0;
  e.tid = warm->id;
  e.ArgStr("graph", lead.graph)
      .ArgU64("dispatch", dispatch)
      .ArgU64("batch_size", batch_size)
      .ArgU64("attempts", out.attempts)
      .ArgStr("status", util::StatusCodeToString(out.status.code()));
  trace->Add(std::move(e));

  // The dispatch's kernel slices on the engine's modeled-time track. The
  // engine is still owned by this dispatcher, so the records are stable;
  // consume them so a long-lived service does not accumulate them forever.
  auto& records = warm->device.totals().kernel_records;
  for (size_t i = kernel_base; i < records.size(); ++i) {
    const sim::KernelRecord& rec = records[i];
    util::TraceEvent k;
    k.name = rec.label.empty() ? "kernel" : rec.label;
    k.cat = "kernel";
    k.ph = 'X';
    k.ts_us = rec.start_seconds * 1e6;
    k.dur_us = rec.seconds * 1e6;
    k.pid = kEngineTracePidBase + warm->id;
    k.tid = 0;
    k.ArgU64("seq", rec.seq)
        .ArgU64("sectors", rec.sectors)
        .ArgU64("dispatch", dispatch);
    trace->Add(std::move(k));
  }
  records.erase(records.begin() + static_cast<ptrdiff_t>(kernel_base),
                records.end());
}

void QueryService::RecordShardDispatch(const std::string& graph,
                                       uint32_t shard) {
  if (shard < m_shard_dispatches_.size()) {
    m_shard_dispatches_[shard]->Add(1);
  }
  // Imbalance = max/mean over the per-shard dispatch counters (1.0 means a
  // perfectly even spread) — the serve-level twin of shard.imbalance on
  // the ShardedEngine side.
  uint64_t total = 0;
  uint64_t peak = 0;
  for (util::Counter* c : m_shard_dispatches_) {
    const uint64_t v = c->value();
    total += v;
    peak = std::max(peak, v);
  }
  if (total > 0 && !m_shard_dispatches_.empty()) {
    const double mean = static_cast<double>(total) /
                        static_cast<double>(m_shard_dispatches_.size());
    m_shard_imbalance_->Set(static_cast<double>(peak) / mean);
  }

  // Hot-graph replication: every time the graph's dispatch count crosses a
  // replicate_hot_after multiple, grow its placement onto the
  // least-dispatched shard not already serving it. New warm engines then
  // rotate onto the replica in AcquireEngine.
  if (options_.replicate_hot_after == 0 || registry_->num_shards() < 2) {
    return;
  }
  uint64_t count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = ++pools_[graph].dispatches;
  }
  if (count % options_.replicate_hot_after != 0) return;
  const Placement placement = registry_->PlacementOf(graph);
  if (placement.shards.size() >= registry_->num_shards()) return;
  uint32_t target = Placement::kNoShard;
  uint64_t target_load = 0;
  for (uint32_t s = 0; s < registry_->num_shards(); ++s) {
    if (placement.OnShard(s)) continue;
    const uint64_t load = m_shard_dispatches_[s]->value();
    if (target == Placement::kNoShard || load < target_load) {
      target = s;
      target_load = load;
    }
  }
  if (target == Placement::kNoShard) return;
  if (registry_->AddReplica(graph, target).ok()) {
    m_.shard_replications->Add(1);
  }
}

void QueryService::WorkerLoop() {
  for (;;) {
    Taken taken;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock,
                     [this] { return stopping_ || TotalQueuedLocked() > 0; });
      if (TotalQueuedLocked() == 0) return;  // stopping_ and fully drained
      taken = TakeBatchLocked();
    }
    for (size_t i = 0; i < taken.shed.size(); ++i) {
      ResolveShed(std::move(taken.shed[i]), taken.shed_reasons[i],
                  taken.taken_at);
    }
    if (!taken.batch.empty()) ExecuteBatch(std::move(taken.batch));
  }
}

void QueryService::ProcessAllPending() {
  for (;;) {
    Taken taken;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (TotalQueuedLocked() == 0) return;
      taken = TakeBatchLocked();
    }
    for (size_t i = 0; i < taken.shed.size(); ++i) {
      ResolveShed(std::move(taken.shed[i]), taken.shed_reasons[i],
                  taken.taken_at);
    }
    if (!taken.batch.empty()) ExecuteBatch(std::move(taken.batch));
  }
}

void QueryService::Shutdown() {
  // Detach from the registry first (no-op if never attached) so a
  // concurrent over-budget Add cannot call back into a dying service.
  registry_->ClearEvictor(this);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  pool_.Drain();  // workers drain the queue, then exit
  // Synchronous mode (no workers) may leave requests queued; fail them
  // loudly rather than dropping their promises.
  std::vector<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& queue : queues_) {
      for (Pending& pending : queue) leftover.push_back(std::move(pending));
      queue.clear();
    }
  }
  for (Pending& pending : leftover) {
    Response response;
    response.status = util::Status::FailedPrecondition(
        "service shut down before the request ran");
    pending.promise.set_value(std::move(response));
  }
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = m_.submitted->value();
  s.rejected = m_.rejected->value();
  s.completed = m_.completed->value();
  s.batches = m_.batches->value();
  s.coalesced = m_.coalesced->value();
  s.engines_created = m_.engines_created->value();
  s.retries = m_.retries->value();
  s.resumes = m_.resumes->value();
  s.checkpoint_fallbacks = m_.checkpoint_fallbacks->value();
  s.batch_splits = m_.batch_splits->value();
  s.breaker_opens = m_.breaker_opens->value();
  s.breaker_rejects = m_.breaker_rejects->value();
  s.deadline_misses = m_.deadline_misses->value();
  s.cancelled = m_.cancelled->value();
  s.shard_replications = m_.shard_replications->value();
  for (int c = 0; c < kNumPriorities; ++c) {
    s.submitted_by_class[c] = m_.submitted_by_class[c]->value();
    s.completed_by_class[c] = m_.completed_by_class[c]->value();
    s.shed_by_class[c] = m_.shed_by_class[c]->value();
  }
  s.quota_rejections = m_.quota_rejections->value();
  s.deadline_drops = m_.deadline_drops->value();
  s.backoff_ms = m_.backoff_ms->value();
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.current_max_batch = effective_max_batch_;
  }
  // Request-latency percentiles from the SageScope histogram (nearest-rank
  // bucket walk; see util::Histogram::Percentile).
  util::Histogram lat = m_.latency_total_us->snapshot();
  s.latency_samples = lat.total_count();
  if (s.latency_samples > 0) {
    s.latency_p50_ms = lat.Percentile(50.0) / 1e3;
    s.latency_p95_ms = lat.Percentile(95.0) / 1e3;
    s.latency_p99_ms = lat.Percentile(99.0) / 1e3;
  }
  return s;
}

}  // namespace sage::serve
