#ifndef SAGE_SERVE_LOADGEN_H_
#define SAGE_SERVE_LOADGEN_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "graph/csr.h"
#include "serve/qos.h"
#include "sim/device_spec.h"
#include "util/arrival.h"
#include "util/status.h"

namespace sage::serve {

/// SageFlood load harness (DESIGN.md §11): a virtual-time discrete-event
/// simulation of the serve tier under configurable offered load. It runs
/// the *same* QosPolicy object the live QueryService runs — the policy
/// path is wall-clock-free, so it composes with virtual time — against a
/// cost model calibrated from real engine dispatches (modeled seconds,
/// deterministic per the PR-2 contract). That combination lets a million
/// requests replay in milliseconds while every admission, eviction, and
/// quota decision is exactly what the real service would have made for
/// the same submission sequence.

/// Modeled dispatch cost of one graph at the batch-size extremes; costs
/// for intermediate batch sizes interpolate linearly.
struct GraphCost {
  double batch1_seconds = 0.0;   ///< solo BFS dispatch
  double batchmax_seconds = 0.0; ///< coalesced MS-BFS at max batch
};

struct CostModel {
  uint32_t max_batch = 64;
  std::vector<GraphCost> graphs;

  /// Modeled seconds of one dispatch of `batch` coalesced requests on
  /// graph `g`.
  double DispatchSeconds(uint32_t g, uint32_t batch) const;
};

/// Runs real engine dispatches (BFS at batch 1, MS-BFS at max_batch) on
/// each graph and records their modeled seconds. Modeled time is
/// bit-identical across host speeds and engine host_threads — which is
/// what makes the whole simulation's shed set replayable (bench_load
/// gates on it).
util::StatusOr<CostModel> CalibrateCostModel(
    const std::vector<const graph::Csr*>& graphs,
    const core::EngineOptions& engine_options, const sim::DeviceSpec& spec,
    uint32_t max_batch);

/// One load scenario. Offered rate is `overload` × the modeled full-batch
/// capacity of the simulated server fleet, so "2.0" means twice what the
/// tier can possibly serve.
struct LoadOptions {
  /// Requests to generate (the bench drives ≥1M across its scenarios).
  uint64_t requests = 100000;
  /// Offered load as a multiple of modeled capacity.
  double overload = 1.0;
  /// Simulated dispatch servers (one warm engine each).
  uint32_t servers = 4;
  uint32_t max_batch = 64;
  uint64_t seed = 0x53414745u;  // "SAGE"
  /// Popularity skew: graphs, sources, and tenants are all drawn
  /// zipf(alpha) — a few hot graphs and one heavy tenant, like real
  /// multi-tenant traffic.
  uint32_t num_tenants = 16;
  double zipf_alpha = 0.9;
  /// Fraction of traffic per class (interactive, batch, best-effort).
  std::array<double, kNumPriorities> class_mix{0.30, 0.40, 0.30};
  /// Admission-queue capacity. Sized so one ON-phase burst (see
  /// `arrival`) fits inside the standing lower-class backlog — bursts are
  /// then absorbed by evicting batch/best-effort work instead of
  /// rejecting interactive requests at a full queue.
  size_t max_pending = 16384;
  /// Policy under test. Defaults give the heaviest zipf tenant (~26% of
  /// traffic) a 20% quota so quota rejections actually occur.
  QosOptions qos;
  /// Arrival shape (open-loop mode): bursty ON/OFF Poisson by default.
  util::ArrivalOptions arrival;
  /// Closed-loop mode: `clients` callers that each submit, wait for the
  /// response, think, and resubmit — backpressure reaches the caller
  /// instead of the queue. Open loop (false) is what the overload gates
  /// use; closed loop is the smoke-test / CLI mode.
  bool closed_loop = false;
  uint32_t clients = 256;
  /// Mean exponential think time between a client's requests (closed
  /// loop; 0 = resubmit immediately).
  double think_seconds = 0.0;

  LoadOptions() {
    qos.tenant_rate_per_tick = 0.2;
    qos.tenant_burst = 64.0;
    arrival.burst_factor = 2.5;
    // Short cycles: a burst must be comparable to the queue, not orders
    // of magnitude beyond it, or every ON phase floods straight through
    // the shedder no matter what the policy does.
    arrival.burst_period_s = 0.005;
    arrival.burst_duty = 0.3;
  }
};

/// Per-class slice of the SLO report. offered = admitted + quota +
/// queue_full; completed = admitted - evicted (the sim serves everything
/// it does not shed).
struct ClassReport {
  uint64_t offered = 0;
  uint64_t admitted = 0;
  uint64_t completed = 0;
  uint64_t evicted = 0;     ///< shed by priority eviction
  uint64_t queue_full = 0;  ///< refused, nothing cheaper to evict
  uint64_t quota = 0;       ///< tenant over quota
  double goodput = 0.0;     ///< completed / offered
  double p50_ms = 0.0;      ///< virtual submit → completion latency
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

struct LoadReport {
  std::string scenario;
  std::array<ClassReport, kNumPriorities> by_class;
  uint64_t requests = 0;
  uint64_t dispatches = 0;
  double mean_batch = 0.0;
  uint64_t quota_rejections = 0;
  uint64_t queue_full_rejections = 0;
  uint64_t evictions = 0;
  /// FNV-1a over every (request id, shed reason) decision in order — the
  /// bit-identity fingerprint bench_load compares across thread counts.
  uint64_t shed_digest = 0;
  double capacity_rps = 0.0;  ///< modeled full-batch fleet capacity
  double offered_rps = 0.0;
  double virtual_seconds = 0.0;  ///< virtual time of the last completion

  /// One JSON object (no trailing newline).
  std::string ToJson() const;
};

/// Runs one scenario. Pure virtual-time: no wall clock, no threads — the
/// same (options, model) pair always produces a bit-identical report.
LoadReport RunLoad(const LoadOptions& options, const CostModel& model);

}  // namespace sage::serve

#endif  // SAGE_SERVE_LOADGEN_H_
