// The multi-GPU scenario (Figure 9): BFS on two simulated GPUs through the
// first-class sharded API — core::ShardedEngine over a sim::DeviceGroup
// with owner-computes partitioning and delta-compressed per-level frontier
// exchange — comparing preprocessing-free hash placement against
// metis-like pre-partitioning and showing why two GPUs are not
// automatically faster (per-iteration synchronization; Section 7.2).

#include <cstdio>

#include "apps/bfs.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "graph/datasets.h"
#include "sim/gpu_device.h"

int main() {
  using namespace sage;
  graph::Csr csr = graph::MakeDataset(graph::DatasetId::kLjournals,
                                      graph::DatasetScale::kTiny);
  std::printf("graph: %u nodes, %llu edges\n\n", csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  const graph::NodeId source = 0;

  // Single-GPU reference.
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::Engine engine(&device, csr, core::EngineOptions());
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, source);
    if (!stats.ok()) return 1;
    std::printf("1 GPU  SAGE               : %6.3f GTEPS\n", stats->GTeps());
  }

  auto run = [&](core::MultiGpuStrategy strategy,
                 graph::PartitionerKind partitioner, const char* label) {
    core::ShardOptions options;
    options.num_shards = 2;
    options.strategy = strategy;
    options.partitioner = partitioner;
    auto engine = core::ShardedEngine::Create(csr, options);
    if (!engine.ok()) {
      std::fprintf(stderr, "%s\n", engine.status().ToString().c_str());
      return;
    }
    apps::AppParams params;
    params.sources = {source};
    auto result = (*engine)->Run("bfs", params);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return;
    }
    const bool metis = partitioner == graph::PartitionerKind::kMetisLike;
    std::printf("2 GPUs %-19s: %6.3f GTEPS | cut %8llu edges, comm %.3f ms, "
                "frontier %llu B (dense %llu B)%s%.2f s partitioning%s\n",
                label,
                result->stats.edges_traversed /
                    ((result->stats.seconds + result->comm_seconds) * 1e9),
                static_cast<unsigned long long>(result->edge_cut),
                result->comm_seconds * 1e3,
                static_cast<unsigned long long>(
                    result->frontier_payload_bytes),
                static_cast<unsigned long long>(result->frontier_dense_bytes),
                metis ? " (+ " : " (", result->partition_seconds,
                metis ? ", excluded)" : ")");
  };

  run(core::MultiGpuStrategy::kGunrockLike, graph::PartitionerKind::kHash,
      "Gunrock-like, hash");
  run(core::MultiGpuStrategy::kGunrockLike,
      graph::PartitionerKind::kMetisLike, "Gunrock-like, metis");
  run(core::MultiGpuStrategy::kGrouteLike, graph::PartitionerKind::kHash,
      "Groute-like, hash");
  run(core::MultiGpuStrategy::kSage, graph::PartitionerKind::kHash,
      "SAGE, hash");

  std::printf("\nSAGE needs no pre-partitioning: resident-tile stealing "
              "balances each device\nand the hash placement is free "
              "(Section 7.2's multi-GPU discussion).\n");
  return 0;
}
