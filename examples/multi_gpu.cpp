// The multi-GPU scenario (Figure 9): BFS on two simulated GPUs with
// owner-computes partitioning and per-level frontier exchange, comparing
// preprocessing-free hash placement against metis-like pre-partitioning
// and showing why two GPUs are not automatically faster (per-iteration
// synchronization; Section 7.2).

#include <cstdio>

#include "apps/bfs.h"
#include "baselines/multi_gpu.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "sim/gpu_device.h"

int main() {
  using namespace sage;
  graph::Csr csr = graph::MakeDataset(graph::DatasetId::kLjournals,
                                      graph::DatasetScale::kTiny);
  std::printf("graph: %u nodes, %llu edges\n\n", csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  const graph::NodeId source = 0;

  // Single-GPU reference.
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::Engine engine(&device, csr, core::EngineOptions());
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, source);
    if (!stats.ok()) return 1;
    std::printf("1 GPU  SAGE               : %6.3f GTEPS\n", stats->GTeps());
  }

  auto run = [&](baselines::MultiGpuStrategy strategy,
                 baselines::PartitionScheme scheme, const char* label) {
    baselines::MultiGpuOptions options;
    options.num_gpus = 2;
    options.strategy = strategy;
    options.partition = scheme;
    auto result = baselines::MultiGpuBfs(csr, source, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return;
    }
    std::printf("2 GPUs %-19s: %6.3f GTEPS | cut %8llu edges, comm %.3f ms"
                "%s%.2f s partitioning%s\n",
                label, result->stats.GTeps(),
                static_cast<unsigned long long>(result->edge_cut),
                result->comm_seconds * 1e3,
                scheme == baselines::PartitionScheme::kMetisLike ? " (+ "
                                                                 : " (",
                result->partition_seconds,
                scheme == baselines::PartitionScheme::kMetisLike
                    ? ", excluded)"
                    : ")");
  };

  run(baselines::MultiGpuStrategy::kGunrockLike,
      baselines::PartitionScheme::kHash, "Gunrock-like, hash");
  run(baselines::MultiGpuStrategy::kGunrockLike,
      baselines::PartitionScheme::kMetisLike, "Gunrock-like, metis");
  run(baselines::MultiGpuStrategy::kGrouteLike,
      baselines::PartitionScheme::kHash, "Groute-like, hash");
  run(baselines::MultiGpuStrategy::kSage, baselines::PartitionScheme::kHash,
      "SAGE, hash");

  std::printf("\nSAGE needs no pre-partitioning: resident-tile stealing "
              "balances each device\nand the hash placement is free "
              "(Section 7.2's multi-GPU discussion).\n");
  return 0;
}
