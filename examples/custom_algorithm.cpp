// Writing a custom graph algorithm on SAGE: implement the filtering step
// (Algorithm 1's interface) and the framework supplies expansion, runtime
// load reallocation, work stealing and contraction. This example builds
// "reachability with hop budget and forbidden nodes" — the kind of
// bespoke query (Section 1: "real-world applications require customized
// algorithms") that dedicated preprocessing-based systems make painful.

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "core/filter.h"
#include "graph/generators.h"
#include "reorder/permutation.h"
#include "sim/gpu_device.h"

namespace {

using sage::graph::NodeId;

/// Constrained reachability: a node is reachable if there is a path from
/// the source of length <= hop_budget that avoids the forbidden set.
class ConstrainedReachability : public sage::core::FilterProgram {
 public:
  ConstrainedReachability(uint32_t hop_budget, std::vector<bool> forbidden)
      : hop_budget_(hop_budget), forbidden_(std::move(forbidden)) {}

  void Bind(sage::core::Engine* engine) override {
    engine_ = engine;
    hops_.assign(engine->csr().num_nodes(), kUnset);
    hops_buf_ = engine->RegisterAttribute("cr.hops", sizeof(uint32_t));
    footprint_.neighbor_reads = {&hops_buf_};
    footprint_.neighbor_writes = {&hops_buf_};
    footprint_.frontier_reads = {&hops_buf_};
  }

  void SetSource(NodeId source_original) {
    std::fill(hops_.begin(), hops_.end(), kUnset);
    hops_[engine_->InternalId(source_original)] = 0;
  }

  // The filtering step: one line of application logic per concern.
  bool Filter(NodeId frontier, NodeId neighbor) override {
    if (forbidden_[engine_->OriginalId(neighbor)]) return false;
    uint32_t candidate = hops_[frontier] + 1;
    if (candidate > hop_budget_) return false;
    if (hops_[neighbor] != kUnset) return false;
    hops_[neighbor] = candidate;
    return true;
  }

  void OnPermutation(std::span<const NodeId> new_of_old) override {
    hops_ = sage::reorder::PermuteVector(hops_, new_of_old);
  }

  const sage::core::Footprint& footprint() const override {
    return footprint_;
  }
  const char* name() const override { return "constrained-reachability"; }

  bool Reachable(NodeId original) const {
    return hops_[engine_->InternalId(original)] != kUnset;
  }

 private:
  static constexpr uint32_t kUnset = 0xffffffffu;

  uint32_t hop_budget_;
  std::vector<bool> forbidden_;
  sage::core::Engine* engine_ = nullptr;
  std::vector<uint32_t> hops_;
  sage::sim::Buffer hops_buf_;
  sage::core::Footprint footprint_;
};

}  // namespace

int main() {
  using namespace sage;
  graph::Csr csr = graph::GenerateWebCopy(20000, 12, 0.7, 7);

  // Forbid the top-degree "hub" pages and ask what is still reachable
  // within 4 hops — e.g. crawling with a blocklist.
  std::vector<bool> forbidden(csr.num_nodes(), false);
  int banned = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (csr.OutDegree(v) > 100) {
      forbidden[v] = true;
      ++banned;
    }
  }

  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, core::EngineOptions());
  ConstrainedReachability query(/*hop_budget=*/4, forbidden);
  if (!engine.Bind(&query).ok()) return 1;

  // Crawl from the busiest page that is not itself banned.
  graph::NodeId start = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (!forbidden[v] && csr.OutDegree(v) > csr.OutDegree(start)) start = v;
  }
  query.SetSource(start);
  graph::NodeId sources[1] = {start};
  auto stats = engine.Run(sources);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }

  uint64_t reachable = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    if (query.Reachable(v)) ++reachable;
  }
  std::printf("graph: %u pages, %d banned hubs\n", csr.num_nodes(), banned);
  std::printf("constrained reachability from page %u (<=4 hops, avoiding "
              "hubs): %llu pages\n",
              start, static_cast<unsigned long long>(reachable));
  std::printf("%llu edges in %.3f ms modeled (%.2f GTEPS) — no "
              "preprocessing, ~30 lines of filtering logic\n",
              static_cast<unsigned long long>(stats->edges_traversed),
              stats->seconds * 1e3, stats->GTeps());
  return 0;
}
