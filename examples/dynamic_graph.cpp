// Dynamic graphs with SAGE (Section 7.2): offline reordering methods
// invalidate whenever the graph changes and must re-run their whole
// preprocessing; SAGE operates on plain CSR, so updates are a CSR merge
// and Sampling-based Reordering simply re-adapts while queries keep
// running. This example streams edge-insertion batches into a social
// graph and keeps querying between batches.

#include <cstdio>

#include "apps/pagerank.h"
#include "core/engine.h"
#include "graph/dynamic.h"
#include "graph/generators.h"
#include "sim/gpu_device.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace sage;
  graph::Csr csr = graph::GenerateRmat(13, 120000, 0.55, 0.2, 0.2, 3);
  util::Rng rng(42);

  std::printf("initial graph: %u nodes, %llu edges\n\n", csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));

  for (int batch_no = 0; batch_no < 4; ++batch_no) {
    // A SAGE engine over the *current* CSR — construction is free of
    // preprocessing, so rebuilding it after updates costs nothing beyond
    // the CSR merge itself.
    sim::GpuDevice device{sim::DeviceSpec()};
    core::EngineOptions options;
    options.sampling_reorder = true;
    options.sampling_threshold_edges = csr.num_edges() / 2;
    core::Engine engine(&device, csr, options);

    apps::PageRankProgram pr;
    auto stats = apps::RunPageRank(engine, pr, 8);
    if (!stats.ok()) return 1;
    std::printf("batch %d: PageRank over %llu edges: %.2f GTEPS, "
                "%u reorder rounds adapted on the fly\n",
                batch_no,
                static_cast<unsigned long long>(csr.num_edges()),
                stats->GTeps(), engine.reorder_rounds());

    // Stream in the next update batch: 5000 new follows, 1000 unfollows.
    graph::EdgeUpdateBatch batch;
    for (int i = 0; i < 5000; ++i) {
      batch.insertions.emplace_back(rng.UniformU32(csr.num_nodes()),
                                    rng.UniformU32(csr.num_nodes()));
    }
    for (int i = 0; i < 1000 && csr.num_edges() > 0; ++i) {
      graph::NodeId u = rng.UniformU32(csr.num_nodes());
      if (csr.OutDegree(u) > 0) {
        batch.deletions.emplace_back(u, csr.Neighbors(u)[0]);
      }
    }
    util::WallTimer merge_timer;
    auto updated = graph::ApplyUpdates(csr, batch);
    if (!updated.ok()) {
      std::fprintf(stderr, "update failed: %s\n",
                   updated.status().ToString().c_str());
      return 1;
    }
    csr = std::move(updated).value();
    std::printf("         applied +%zu/-%zu edges in %.1f ms (CSR merge; no "
                "preprocessing to redo)\n",
                batch.insertions.size(), batch.deletions.size(),
                merge_timer.Millis());
  }
  return 0;
}
