// The out-of-core scenario (Section 3.3 / Figure 8): the adjacency array
// does not fit in device memory and is accessed across PCIe. This example
// contrasts on-demand scattered access, Subway-style planned preloading,
// and SAGE's merged/aligned tile access on the same graph, and prints the
// link-level accounting that explains the gap (frames, payload ratio).

#include <cstdio>

#include "apps/bfs.h"
#include "baselines/subway.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "sim/gpu_device.h"

int main() {
  using namespace sage;
  graph::Csr csr = graph::MakeDataset(graph::DatasetId::kFriendsters,
                                      graph::DatasetScale::kTiny);
  std::printf("graph: %u nodes, %llu edges; adjacency held in host memory\n\n",
              csr.num_nodes(),
              static_cast<unsigned long long>(csr.num_edges()));
  const graph::NodeId source = 0;

  // --- On-demand scattered access (UM-style; the slow baseline). ----------
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::EngineOptions options;
    options.adjacency_on_host = true;
    options.tiled_partitioning = false;
    options.resident_tiles = false;
    core::Engine engine(&device, csr, options);
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, source);
    if (!stats.ok()) return 1;
    const auto& link = device.host_link().stats();
    std::printf("on-demand : %6.3f GTEPS | frames %8llu, payload ratio "
                "%.2f\n",
                stats->GTeps(), static_cast<unsigned long long>(link.frames),
                link.Efficiency());
  }

  // --- Subway: extract the active subgraph, preload it asynchronously. ----
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    baselines::SubwayBfs subway(&device, &csr);
    auto result = subway.Run(source);
    std::printf("subway    : %6.3f GTEPS | transferred %.1f MB, extraction "
                "%.2f ms, transfer %.2f ms\n",
                result.stats.GTeps(),
                result.bytes_transferred / 1e6,
                result.extraction_seconds * 1e3,
                result.transfer_seconds * 1e3);
  }

  // --- SAGE: tile-aligned merged host reads + resident-tile stealing. -----
  {
    sim::GpuDevice device{sim::DeviceSpec()};
    core::EngineOptions options;
    options.adjacency_on_host = true;  // everything else: full SAGE
    core::Engine engine(&device, csr, options);
    apps::BfsProgram bfs;
    auto stats = apps::RunBfs(engine, bfs, source);
    if (!stats.ok()) return 1;
    const auto& link = device.host_link().stats();
    std::printf("SAGE      : %6.3f GTEPS | frames %8llu, payload ratio "
                "%.2f\n",
                stats->GTeps(), static_cast<unsigned long long>(link.frames),
                link.Efficiency());
  }

  std::printf("\nSAGE's tiles turn scattered neighbor reads into merged, "
              "sector-aligned PCIe frames;\nresident-tile stealing keeps "
              "the link pipeline occupied (Section 7.2).\n");
  return 0;
}
