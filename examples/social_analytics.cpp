// Social-network analytics on a skewed follower graph — the workload the
// paper's introduction motivates: influence (PageRank), brokerage
// (Betweenness Centrality) and reachability (BFS) on a power-law graph,
// all through the same filtering-step API, with Sampling-based Reordering
// improving the layout on the fly as the queries run.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "apps/bc.h"
#include "apps/bfs.h"
#include "apps/pagerank.h"
#include "core/engine.h"
#include "graph/datasets.h"
#include "sim/gpu_device.h"

int main() {
  using namespace sage;

  // A twitter-like follower graph: extreme out-degree skew (super nodes).
  graph::Csr csr = graph::MakeDataset(graph::DatasetId::kTwitters,
                                      graph::DatasetScale::kTiny);
  auto stats = graph::ComputeStats(csr);
  std::printf("follower graph: %llu users, %llu follows, max followees %u, "
              "degree gini %.2f\n\n",
              static_cast<unsigned long long>(stats.num_nodes),
              static_cast<unsigned long long>(stats.num_edges),
              stats.max_degree, stats.degree_gini);

  sim::GpuDevice device{sim::DeviceSpec()};
  core::EngineOptions options;
  options.sampling_reorder = true;  // adapt the layout to these queries
  options.sampling_threshold_edges = csr.num_edges() / 2;
  core::Engine engine(&device, csr, options);

  // --- Influence: PageRank. ---------------------------------------------
  apps::PageRankProgram pagerank;
  auto pr_stats = apps::RunPageRank(engine, pagerank, 10);
  if (!pr_stats.ok()) return 1;
  std::vector<std::pair<double, graph::NodeId>> top;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    top.emplace_back(pagerank.RankOf(v), v);
  }
  std::partial_sort(top.begin(), top.begin() + 5, top.end(),
                    std::greater<>());
  std::printf("PageRank (%u iters, %.2f GTEPS) — top influencers:\n",
              pr_stats->iterations, pr_stats->GTeps());
  for (int i = 0; i < 5; ++i) {
    std::printf("  user %-8u rank %.6f  (followees: %u)\n", top[i].second,
                top[i].first, csr.OutDegree(top[i].second));
  }

  // --- Brokerage: Betweenness Centrality from a few seeds. ----------------
  apps::Betweenness bc(csr.num_nodes());
  core::RunStats bc_total;
  for (graph::NodeId source : {top[0].second, top[1].second, top[2].second}) {
    auto s = bc.Run(engine, source);
    if (!s.ok()) return 1;
    bc_total.Accumulate(*s);
  }
  auto broker = std::max_element(bc.centrality().begin(),
                                 bc.centrality().end());
  std::printf("\nBetweenness (3 seeds, %.2f GTEPS) — top broker: user %ld "
              "(score %.1f)\n",
              bc_total.GTeps(),
              static_cast<long>(broker - bc.centrality().begin()), *broker);

  // --- Reachability: BFS hops from the top influencer. --------------------
  apps::BfsProgram bfs;
  auto bfs_stats = apps::RunBfs(engine, bfs, top[0].second);
  if (!bfs_stats.ok()) return 1;
  std::vector<uint64_t> per_hop(16, 0);
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    uint32_t d = bfs.DistanceOf(v);
    if (d != apps::BfsProgram::kUnreached && d < per_hop.size()) {
      ++per_hop[d];
    }
  }
  std::printf("\nBFS from user %u (%.2f GTEPS) — audience by hop:\n",
              top[0].second, bfs_stats->GTeps());
  for (size_t h = 0; h < per_hop.size() && per_hop[h] > 0; ++h) {
    std::printf("  hop %zu: %llu users\n", h,
                static_cast<unsigned long long>(per_hop[h]));
  }

  std::printf("\nSampling-based Reordering applied %u rounds while the "
              "queries ran (modeled cost %.3f ms total)\n",
              engine.reorder_rounds(), engine.reorder_seconds_total() * 1e3);
  return 0;
}
