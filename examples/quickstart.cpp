// Quickstart: load (or generate) a graph, build the preprocessing-free
// SAGE engine, and run BFS — the five-minute tour of the public API.
//
//   ./examples/quickstart [edge_list.txt]
//
// With no argument a small synthetic social graph is generated. With an
// argument, a whitespace "u v" edge list (SNAP style) is loaded.

#include <cstdio>

#include "apps/bfs.h"
#include "core/engine.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "sim/gpu_device.h"

int main(int argc, char** argv) {
  using namespace sage;

  // 1. Get a graph in CSR form. SAGE needs nothing else — no preprocessing
  //    pass, no auxiliary structures (Section 1 of the paper).
  graph::Csr csr;
  if (argc > 1) {
    auto coo = graph::LoadEdgeListText(argv[1]);
    if (!coo.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   coo.status().ToString().c_str());
      return 1;
    }
    csr = graph::Csr::FromCoo(*coo);
    std::printf("loaded %s: %u nodes, %llu edges\n", argv[1],
                csr.num_nodes(),
                static_cast<unsigned long long>(csr.num_edges()));
  } else {
    csr = graph::GenerateRmat(/*scale=*/14, /*num_edges=*/400000,
                              /*a=*/0.57, /*b=*/0.19, /*c=*/0.19, /*seed=*/1);
    std::printf("generated RMAT graph: %u nodes, %llu edges\n",
                csr.num_nodes(),
                static_cast<unsigned long long>(csr.num_edges()));
  }

  // 2. A simulated GPU (deterministic cost model of an RTX-8000-class
  //    device) and the SAGE engine with default options: Tiled
  //    Partitioning + Resident Tile Stealing enabled.
  sim::GpuDevice device{sim::DeviceSpec()};
  core::Engine engine(&device, csr, core::EngineOptions());

  // 3. Run BFS. Programs implement only the filtering step (Algorithm 1);
  //    expansion, load balancing and contraction are the engine's job.
  apps::BfsProgram bfs;
  auto stats = apps::RunBfs(engine, bfs, /*source=*/0);
  if (!stats.ok()) {
    std::fprintf(stderr, "BFS failed: %s\n", stats.status().ToString().c_str());
    return 1;
  }

  uint64_t reached = 0;
  uint32_t max_depth = 0;
  for (graph::NodeId v = 0; v < csr.num_nodes(); ++v) {
    uint32_t d = bfs.DistanceOf(v);
    if (d != apps::BfsProgram::kUnreached) {
      ++reached;
      max_depth = std::max(max_depth, d);
    }
  }
  std::printf("BFS from node 0: reached %llu nodes, max depth %u\n",
              static_cast<unsigned long long>(reached), max_depth);
  std::printf("traversed %llu edges in %u iterations\n",
              static_cast<unsigned long long>(stats->edges_traversed),
              stats->iterations);
  std::printf("modeled GPU time: %.3f ms  (%.2f GTEPS)\n",
              stats->seconds * 1e3, stats->GTeps());
  std::printf("memory: L2 hit rate %.1f%%, access amplification %.2fx\n",
              100.0 * device.mem().device_stats().L2HitRate(),
              device.mem().device_stats().Amplification());
  return 0;
}
